"""Generator-level transparency of the simulation kernel.

``kernels.sim`` may only change how fast concrete steps run — never what
any tool produces.  Fixed-seed STCG runs must be bit-identical with the
kernel on or off, the baselines must be equally unaffected, and symbolic
execution (the SLDV unroller, STCG's encodings) never touches the kernel.
"""

import pytest

from repro.baselines.simcotest import SimCoTestConfig, SimCoTestGenerator
from repro.baselines.sldv import SldvConfig, SldvGenerator
from repro.core import StcgConfig, StcgGenerator
from repro.core.config import KernelConfig

from tests.conftest import build_counter_model, build_queue_model
from tests.core.test_stcg_cache import assert_identical


@pytest.mark.parametrize("build", [build_counter_model, build_queue_model])
def test_stcg_bit_identical_kernel_on_vs_off(build):
    on = StcgGenerator(
        build(),
        StcgConfig(budget_s=10.0, seed=7, kernels=KernelConfig(sim=True)),
    ).run()
    off = StcgGenerator(
        build(),
        StcgConfig(budget_s=10.0, seed=7, kernels=KernelConfig(sim=False)),
    ).run()
    assert_identical(on, off)


def test_simcotest_replay_identical_kernel_on_vs_off(monkeypatch):
    import repro.baselines.simcotest as module

    def run(force_interpreter):
        if force_interpreter:
            original = module.Simulator
            monkeypatch.setattr(
                module,
                "Simulator",
                lambda *args, **kwargs: original(
                    *args, **{**kwargs, "kernel": False}
                ),
            )
        result = SimCoTestGenerator(
            build_counter_model(), SimCoTestConfig(budget_s=5.0, seed=3)
        ).run()
        monkeypatch.undo()
        return result

    assert_identical(run(False), run(True))


def test_sldv_symbolic_path_untouched_by_kernel(monkeypatch):
    """SLDV's unroller is symbolic (interpreter-only by construction); the
    kernel only accelerates counterexample replay, so results must be
    identical either way."""
    import repro.baselines.sldv as module

    def run(force_interpreter):
        if force_interpreter:
            original = module.Simulator
            monkeypatch.setattr(
                module,
                "Simulator",
                lambda *args, **kwargs: original(
                    *args, **{**kwargs, "kernel": False}
                ),
            )
        result = SldvGenerator(
            build_counter_model(), SldvConfig(budget_s=5.0, seed=3, max_depth=3)
        ).run()
        monkeypatch.undo()
        return result

    assert_identical(run(False), run(True))


class TestKernelTraceData:
    def test_traced_run_reports_kernel_stats(self):
        result = StcgGenerator(
            build_counter_model(),
            StcgConfig(budget_s=5.0, seed=1, trace=True),
        ).run()
        kernel = result.trace_data["kernel"]
        assert kernel["enabled"] is True
        assert kernel["specialized_blocks"] > 0
        assert kernel["fallback_blocks"] == 0
        assert kernel["kernel_steps"] > 0

    def test_kernel_off_is_reported_as_disabled(self):
        result = StcgGenerator(
            build_counter_model(),
            StcgConfig(budget_s=5.0, seed=1, trace=True,
                       kernels=KernelConfig(sim=False)),
        ).run()
        assert result.trace_data["kernel"] == {"enabled": False}

    def test_untraced_run_has_no_trace_data(self):
        result = StcgGenerator(
            build_counter_model(), StcgConfig(budget_s=5.0, seed=1)
        ).run()
        assert result.trace_data == {}
