"""Kernel/interpreter equivalence over every registry model.

The fixed-seed contract of ``repro.kernel``: under identical input
sequences, a kernel simulator and an interpreter simulator are
**bit-identical** — same outputs (values and types), same coverage events
in the same order, same taken outcomes, same state trajectory, same final
coverage numbers.
"""

import random

import pytest

from repro.coverage.collector import CoverageCollector
from repro.model.inputs import random_input
from repro.model.simulator import Simulator
from repro.models.registry import BENCHMARKS, SIMPLE_CPUTASK

from tests.conftest import build_counter_model, build_queue_model

STEPS = 160
SEED = 42

MODELS = list(BENCHMARKS) + [SIMPLE_CPUTASK]


def _sequence(compiled, seed, steps):
    rng = random.Random(seed)
    return [random_input(compiled.inports, rng) for _ in range(steps)]


def _assert_steps_identical(a, b):
    assert a.outputs == b.outputs
    for name in a.outputs:
        assert type(a.outputs[name]) is type(b.outputs[name]), name
    assert a.new_branch_ids == b.new_branch_ids
    assert a.taken_outcomes == b.taken_outcomes
    assert a.new_obligations == b.new_obligations


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
def test_registry_model_bit_identical(model):
    compiled_k = model.build()
    compiled_i = model.build()
    collector_k = CoverageCollector(compiled_k.registry)
    collector_i = CoverageCollector(compiled_i.registry)
    sim_k = Simulator(compiled_k, collector_k, kernel=True)
    sim_i = Simulator(compiled_i, collector_i, kernel=False)
    assert sim_k.kernel_enabled and not sim_i.kernel_enabled

    for inputs in _sequence(compiled_k, SEED, STEPS):
        result_k = sim_k.step(inputs)
        result_i = sim_i.step(inputs)
        _assert_steps_identical(result_k, result_i)
        assert sim_k.get_state().values == sim_i.get_state().values
    assert collector_k.decision_coverage() == collector_i.decision_coverage()
    assert collector_k.condition_coverage() == collector_i.condition_coverage()
    assert collector_k.mcdc_coverage() == collector_i.mcdc_coverage()


@pytest.mark.parametrize("model", MODELS, ids=lambda m: m.name)
def test_registry_models_fully_specialize(model):
    """No registry model should fall back to the interpreter per block —
    every block class it uses has a kernel factory."""
    sim = Simulator(model.build())
    stats = sim.kernel_stats()
    assert stats["fallback_blocks"] == 0, stats["fallback_classes"]
    assert stats["specialized_blocks"] > 0


class TestSnapshotRestore:
    def test_state_jump_mid_sequence_is_identical(self):
        """``set_state`` to a captured snapshot replays identically on
        both paths (STCG's tree jumps run through exactly this)."""
        compiled = build_counter_model()
        sim_k = Simulator(compiled, kernel=True)
        sim_i = Simulator(build_counter_model(), kernel=False)
        sequence = _sequence(compiled, 7, 30)
        for inputs in sequence[:15]:
            sim_k.step(inputs)
            sim_i.step(inputs)
        snapshot = sim_k.get_state()
        assert snapshot.values == sim_i.get_state().values

        for inputs in sequence[15:]:
            sim_k.step(inputs)
            sim_i.step(inputs)
        sim_k.set_state(snapshot)
        sim_i.set_state(snapshot)
        for inputs in sequence[15:]:
            _assert_steps_identical(sim_k.step(inputs), sim_i.step(inputs))

    def test_reset_returns_to_initial_state(self):
        compiled = build_queue_model()
        sim = Simulator(compiled)
        for inputs in _sequence(compiled, 3, 10):
            sim.step(inputs)
        sim.reset()
        assert sim.get_state().values == compiled.initial_state()
        assert sim.time_index == 0


class TestKernelStats:
    def test_interpreter_simulator_reports_none(self):
        sim = Simulator(build_counter_model(), kernel=False)
        assert sim.kernel_stats() is None

    def test_kernel_steps_count_executed_steps(self):
        compiled = build_counter_model()
        sim = Simulator(compiled)
        for inputs in _sequence(compiled, 1, 5):
            sim.step(inputs)
        assert sim.kernel_stats()["kernel_steps"] == 5
