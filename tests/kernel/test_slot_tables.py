"""The precomputed slot tables on ``CompiledModel``.

``plan_index_of`` / ``input_slots`` / ``outport_slots`` replace the old
``_plan_index_map`` monkey-patch: they are built in ``__post_init__`` and
must be correct (every slot points at the producing plan item) and
per-instance (two compiles of the same source must never share them —
the old patch cached per-object state on a shared attribute name).
"""

from repro.models.registry import get_benchmark

from tests.conftest import build_counter_model, build_queue_model


class TestSlotCorrectness:
    def test_plan_index_of_maps_every_block(self):
        compiled = build_queue_model()
        assert len(compiled.plan_index_of) == len(compiled.plan)
        for item in compiled.plan:
            assert compiled.plan_index_of[id(item.block)] == item.index

    def test_input_slots_point_at_producers(self):
        for compiled in (build_counter_model(), build_queue_model()):
            assert len(compiled.input_slots) == len(compiled.plan)
            for item in compiled.plan:
                slots = compiled.input_slots[item.index]
                assert len(slots) == len(item.input_signals)
                for signal, (src_index, port) in zip(item.input_signals, slots):
                    assert compiled.plan[src_index].block is signal.block
                    assert port == signal.port

    def test_outport_slots_match_outports(self):
        compiled = build_counter_model()
        assert len(compiled.outport_slots) == len(compiled.outports)
        for (name, signal), (slot_name, index, port) in zip(
            compiled.outports, compiled.outport_slots
        ):
            assert name == slot_name
            assert compiled.plan[index].block is signal.block
            assert port == signal.port


class TestNoSharingBetweenCompiles:
    def test_two_compiles_never_share_tables(self):
        a = build_counter_model()
        b = build_counter_model()
        assert a.plan_index_of is not b.plan_index_of
        assert a.input_slots is not b.input_slots
        assert a.outport_slots is not b.outport_slots
        # Indices key on id(block); distinct builds use distinct blocks.
        assert not (set(a.plan_index_of) & set(b.plan_index_of))

    def test_mutating_one_table_leaves_the_other_intact(self):
        a = build_counter_model()
        b = build_counter_model()
        a.plan_index_of.clear()
        assert len(b.plan_index_of) == len(b.plan)

    def test_registry_builds_are_independent(self):
        model = get_benchmark("CPUTask")
        first = model.build()
        second = model.build()
        assert first.plan_index_of is not second.plan_index_of
        for item in second.plan:
            assert second.plan_index_of[id(item.block)] == item.index
