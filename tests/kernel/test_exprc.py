"""``compile_expr`` must be observably equivalent to ``evaluate``.

Same values, same laziness (short-circuit connectives, unselected ITE
branch never computed), same errors with the same messages.
"""

import pytest

from repro.errors import EvalError
from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.evaluator import evaluate
from repro.expr.types import ArrayType, BOOL, INT, REAL
from repro.kernel import compile_expr

I = Var("i", INT)
J = Var("j", INT)
R = Var("r", REAL)
B = Var("b", BOOL)
A = Var("a", ArrayType(INT, 3))

CASES = [
    (x.add(I, J), {"i": 2, "j": 3}),
    (x.sub(I, J), {"i": 2, "j": 3}),
    (x.mul(I, R), {"i": 2, "r": 1.5}),
    (x.div(I, J), {"i": 1, "j": 4}),
    (x.div(I, J), {"i": -7, "j": 2}),
    (x.idiv(I, J), {"i": -7, "j": 2}),
    (x.mod(I, J), {"i": -7, "j": 2}),
    (x.minimum(I, J), {"i": 4, "j": 9}),
    (x.maximum(I, J), {"i": 4, "j": 9}),
    (x.neg(I), {"i": 5}),
    (x.absolute(I), {"i": -5}),
    (x.floor(R), {"r": -1.5}),
    (x.ceil(R), {"r": -1.5}),
    (x.to_int(R), {"r": 2.9}),
    (x.to_real(I), {"i": 3}),
    (x.to_bool(I), {"i": 2}),
    (x.saturate(I, x.lift(0), x.lift(10)), {"i": -3}),
    (x.lt(I, J), {"i": 1, "j": 2}),
    (x.ge(I, J), {"i": 1, "j": 2}),
    (x.eq(I, J), {"i": 2, "j": 2}),
    (x.ne(I, J), {"i": 2, "j": 2}),
    (x.land(B, x.lt(I, J)), {"b": True, "i": 0, "j": 1}),
    (x.lor(B, x.lt(I, J)), {"b": False, "i": 5, "j": 1}),
    (x.lxor(B, x.lt(I, J)), {"b": True, "i": 0, "j": 1}),
    (x.lnot(B), {"b": False}),
    (x.implies(B, x.lt(I, J)), {"b": False, "i": 5, "j": 1}),
    (x.ite(B, x.add(I, J), x.sub(I, J)), {"b": True, "i": 4, "j": 1}),
    (x.ite(B, x.add(I, J), x.sub(I, J)), {"b": False, "i": 4, "j": 1}),
    (x.select(A, I), {"a": (10, 20, 30), "i": 2}),
    (x.store(A, I, J), {"a": (10, 20, 30), "i": 1, "j": 99}),
]


@pytest.mark.parametrize("expr,env", CASES, ids=lambda c: repr(c)[:48])
def test_compiled_matches_evaluator(expr, env):
    expected = evaluate(expr, env)
    got = compile_expr(expr)(env)
    assert got == expected
    assert type(got) is type(expected)


class TestLaziness:
    def test_and_short_circuits_past_division_by_zero(self):
        expr = x.land(x.gt(J, 0), x.lt(x.div(I, J), 2.0))
        env = {"i": 1, "j": 0}
        assert evaluate(expr, env) is False
        assert compile_expr(expr)(env) is False

    def test_or_short_circuits(self):
        expr = x.lor(x.le(J, 5), x.lt(x.div(I, J), 2.0))
        env = {"i": 1, "j": 0}
        assert compile_expr(expr)(env) is True

    def test_implies_vacuous_truth_skips_consequent(self):
        expr = x.implies(x.gt(J, 0), x.lt(x.div(I, J), 2.0))
        assert compile_expr(expr)({"i": 1, "j": 0}) is True

    def test_unselected_ite_branch_never_computed(self):
        expr = x.ite(B, x.lift(0), x.select(A, I))
        env = {"b": True, "a": (1, 2, 3), "i": 99}
        assert evaluate(expr, env) == 0
        assert compile_expr(expr)(env) == 0


class TestErrorEquivalence:
    def _messages(self, expr, env):
        with pytest.raises(EvalError) as interpreted:
            evaluate(expr, env)
        with pytest.raises(EvalError) as compiled:
            compile_expr(expr)(env)
        return str(interpreted.value), str(compiled.value)

    def test_unbound_variable_message(self):
        a, b = self._messages(I, {})
        assert a == b

    def test_select_out_of_range_message(self):
        a, b = self._messages(x.select(A, I), {"a": (1, 2, 3), "i": 7})
        assert a == b

    def test_store_out_of_range_message(self):
        a, b = self._messages(
            x.store(A, I, J), {"a": (1, 2, 3), "i": -1, "j": 0}
        )
        assert a == b


def test_variable_coercion_matches_declared_type():
    assert compile_expr(R)({"r": 3}) == 3.0
    assert isinstance(compile_expr(R)({"r": 3}), float)
    assert compile_expr(B)({"b": 1}) is True
    assert compile_expr(I)({"i": True}) == 1
