"""Tests for the stable ``repro.api`` facade and config validation."""

import json

import pytest

from repro import api
from repro.core.config import StcgConfig
from repro.errors import CellTimeout, ConfigError, ReproError
from repro.harness.runner import MatrixConfig
from repro.models.registry import BenchmarkModel

from tests.conftest import build_counter_model, build_sleepy_model

TINY = BenchmarkModel("Tiny", "counter fixture", build_counter_model, 0, 0)
SLEEPY = BenchmarkModel("Sleepy", "hang injection", build_sleepy_model, 0, 0)


class TestGenerate:
    def test_accepts_benchmark_entry(self):
        result = api.generate(TINY, tool="STCG", budget_s=2.0, seed=0)
        assert result.tool == "STCG"
        # model_name reflects the compiled model, not the registry label
        assert result.model_name == "Counter"

    def test_accepts_benchmark_name(self):
        result = api.generate("AFC", tool="SimCoTest", budget_s=1.0, seed=0)
        assert result.tool == "SimCoTest"
        assert result.model_name == "AFC"

    def test_accepts_compiled_model(self):
        compiled = build_counter_model()
        result = api.generate(compiled, budget_s=2.0, seed=0)
        assert result.model_name == compiled.name
        assert result.decision > 0.0

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            api.generate(TINY, "STCG")  # tool must be keyword

    def test_unknown_tool(self):
        with pytest.raises(ReproError, match="unknown tool"):
            api.generate(TINY, tool="MagicTool", budget_s=1.0)

    def test_bad_budget(self):
        with pytest.raises(ReproError):
            api.generate(TINY, budget_s=-1.0)

    def test_bad_model_type(self):
        with pytest.raises(ReproError):
            api.generate(42, budget_s=1.0)

    def test_config_only_for_stcg(self):
        config = StcgConfig(budget_s=1.0, seed=0)
        with pytest.raises(ReproError, match="STCG/Fuzz/Hybrid only"):
            api.generate(TINY, tool="SLDV", config=config)

    def test_config_overrides(self):
        config = StcgConfig(budget_s=2.0, seed=5, random_batch=1)
        result = api.generate(TINY, config=config)
        assert result.tool == "STCG"

    def test_cell_timeout_raises(self):
        with pytest.raises(CellTimeout):
            api.generate(SLEEPY, budget_s=10.0, cell_timeout=0.4)

    def test_events_out_writes_stream_and_manifest(self, tmp_path):
        path = tmp_path / "gen.jsonl"
        result = api.generate(TINY, budget_s=2.0, seed=0,
                              events_out=str(path))
        events = api.read_events(str(path))
        kinds = [e["event"] for e in events]
        assert "run_started" in kinds and "run_finished" in kinds
        manifest = json.loads((tmp_path / "gen.manifest.json").read_text())
        assert manifest["ok"] == 1
        assert manifest["coverage"]["Tiny"]["STCG"]["decision"] == \
            result.decision


class TestRunExperiment:
    def test_structure_and_workers_equivalence(self):
        kwargs = dict(models=[TINY], budget_s=4.0, repetitions=2, seed=1)
        serial = api.run_experiment(workers=1, **kwargs)
        parallel = api.run_experiment(workers=2, **kwargs)
        assert set(serial.outcomes) == {"Tiny"}
        assert set(serial.outcomes["Tiny"]) == set(api.TOOLS)
        for tool in api.TOOLS:
            assert serial.outcomes["Tiny"][tool].decision == \
                parallel.outcomes["Tiny"][tool].decision

    def test_accepts_model_names(self):
        result = api.run_experiment(
            models=["AFC"], tools=("SimCoTest",), budget_s=1.0, repetitions=1
        )
        assert set(result.outcomes) == {"AFC"}

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            api.run_experiment([TINY], ("STCG",))

    def test_validation_errors(self):
        with pytest.raises(ReproError):
            api.run_experiment(models=[TINY], repetitions=0)
        with pytest.raises(ReproError):
            api.run_experiment(models=[TINY], budget_s=0.0)
        with pytest.raises(ReproError):
            api.run_experiment(models=[TINY], workers=0)
        with pytest.raises(ReproError, match="unknown tool"):
            api.run_experiment(models=[TINY], tools=("Nope",))
        with pytest.raises(ReproError, match="at least one model"):
            api.run_experiment(models=[])

    def test_events_out_writes_stream_and_manifest(self, tmp_path):
        path = tmp_path / "matrix.jsonl"
        result = api.run_experiment(
            models=[TINY], tools=("STCG",), budget_s=2.0, repetitions=1,
            events_out=str(path),
        )
        events = api.read_events(str(path))
        assert events[-1]["event"] == "matrix_finished"
        manifest = json.loads(
            (tmp_path / "matrix.manifest.json").read_text()
        )
        assert manifest["cells"] == result.cells_total
        assert manifest["failed"] == 0

    def test_list_models(self):
        names = api.list_models()
        assert "CPUTask" in names and "TCP" in names


class TestConfigValidation:
    def test_stcg_config_keyword_only(self):
        with pytest.raises(TypeError):
            StcgConfig(5.0)

    @pytest.mark.parametrize("kwargs", [
        {"budget_s": -1.0},
        {"budget_s": 0.0},
        {"random_sequence_length": 0},
        {"random_batch": 0},
        {"max_tree_nodes": 0},
        {"failure_backoff_after": 0},
        {"random_warmup_s": -0.5},
        {"fresh_input_mix": 1.5},
        {"seed": "zero"},
    ])
    def test_stcg_config_rejects_nonsense(self, kwargs):
        with pytest.raises(ConfigError):
            StcgConfig(**kwargs)

    def test_matrix_config_keyword_only(self):
        with pytest.raises(TypeError):
            MatrixConfig(5.0)

    @pytest.mark.parametrize("kwargs", [
        {"budget_s": 0.0},
        {"repetitions": 0},
        {"sldv_repetitions": 0},
        {"sldv_max_depth": 0},
        {"seed": 1.5},
    ])
    def test_matrix_config_rejects_nonsense(self, kwargs):
        with pytest.raises(ConfigError):
            MatrixConfig(**kwargs)

    def test_config_error_is_repro_error(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(CellTimeout, ReproError)


class TestCliFlags:
    def test_table3_through_executor(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t3.jsonl"
        code = main([
            "table3", "--budget", "1", "--reps", "1",
            "--models", "AFC", "--workers", "2",
            "--events-out", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "AFC" in out and "STCG" in out
        assert path.exists()
        assert (tmp_path / "t3.manifest.json").exists()

    def test_generate_with_events(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "gen.jsonl"
        code = main([
            "generate", "AFC", "--tool", "SimCoTest", "--budget", "1",
            "--events-out", str(path),
        ])
        assert code == 0
        assert "SimCoTest on AFC" in capsys.readouterr().out
        kinds = [e["event"] for e in api.read_events(str(path))]
        assert "run_finished" in kinds
