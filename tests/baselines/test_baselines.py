"""Tests for the SLDV-like and SimCoTest-like baselines."""

import pytest

from repro.baselines import (
    SimCoTestConfig,
    SimCoTestGenerator,
    SldvConfig,
    SldvGenerator,
)
from repro.core.result import ORIGIN_TOOL

from tests.conftest import build_counter_model, build_queue_model


class TestSimCoTest:
    def test_covers_shallow_branches(self, counter_model):
        result = SimCoTestGenerator(
            counter_model, SimCoTestConfig(budget_s=5.0, seed=0)
        ).run()
        assert result.decision > 0.5
        assert result.tool == "SimCoTest"

    def test_kept_cases_have_new_coverage(self, counter_model):
        result = SimCoTestGenerator(
            counter_model, SimCoTestConfig(budget_s=3.0, seed=0)
        ).run()
        for case in result.suite:
            assert case.new_branch_ids
            assert case.origin == ORIGIN_TOOL

    def test_deterministic_given_seed(self):
        a = SimCoTestGenerator(
            build_queue_model(), SimCoTestConfig(budget_s=2.0, seed=9)
        ).run()
        b = SimCoTestGenerator(
            build_queue_model(), SimCoTestConfig(budget_s=2.0, seed=9)
        ).run()
        # Same seed explores the same candidates; coverage identical.
        assert a.decision == b.decision

    def test_stats_track_simulations(self, counter_model):
        result = SimCoTestGenerator(
            counter_model, SimCoTestConfig(budget_s=2.0, seed=0)
        ).run()
        assert result.stats["simulations"] > 0
        assert result.stats["steps_executed"] > 0

    def test_timeline_monotone(self, counter_model):
        result = SimCoTestGenerator(
            counter_model, SimCoTestConfig(budget_s=3.0, seed=0)
        ).run()
        coverages = [e.decision_coverage for e in result.timeline]
        assert coverages == sorted(coverages)

    def test_stops_on_full_coverage(self, counter_model):
        import time

        start = time.monotonic()
        result = SimCoTestGenerator(
            counter_model, SimCoTestConfig(budget_s=60.0, seed=0)
        ).run()
        elapsed = time.monotonic() - start
        if result.decision == 1.0:
            assert elapsed < 30.0


class TestSldv:
    def test_covers_step_one_branches(self, counter_model):
        result = SldvGenerator(
            counter_model, SldvConfig(budget_s=10.0, seed=0, max_depth=2)
        ).run()
        assert result.decision > 0.0
        assert result.tool == "SLDV"

    def test_multi_step_needle_found_by_unrolling(self, counter_model):
        """level:true needs two accumulating ticks — depth >= 2."""
        result = SldvGenerator(
            counter_model, SldvConfig(budget_s=20.0, seed=0, max_depth=3)
        ).run()
        high = next(
            b for b in counter_model.registry.branches
            if b.label.endswith("level:true")
        )
        covered = {
            bid for case in result.suite for bid in case.new_branch_ids
        }
        assert high.branch_id in covered

    def test_depth_reached_recorded(self, counter_model):
        result = SldvGenerator(
            counter_model, SldvConfig(budget_s=10.0, seed=0, max_depth=3)
        ).run()
        assert 1 <= result.stats["depth_reached"] <= 3

    def test_solver_stats(self, counter_model):
        result = SldvGenerator(
            counter_model, SldvConfig(budget_s=5.0, seed=0, max_depth=2)
        ).run()
        assert result.stats["solver_calls"] > 0
        assert (
            result.stats["sat"] + result.stats["unsat"]
            + result.stats["unknown"] == result.stats["solver_calls"]
        )

    def test_cases_replay_from_initial_state(self, counter_model):
        """SLDV cases always start at the initial state (no state jumps)."""
        result = SldvGenerator(
            counter_model, SldvConfig(budget_s=5.0, seed=0, max_depth=2)
        ).run()
        from tests.conftest import build_counter_model

        replayed = result.suite.replay(build_counter_model())
        assert replayed.decision_coverage() == pytest.approx(result.decision)

    def test_budget_respected(self, queue_model):
        import time

        start = time.monotonic()
        SldvGenerator(
            queue_model, SldvConfig(budget_s=2.0, seed=0, max_depth=8)
        ).run()
        assert time.monotonic() - start < 8.0


class TestComparativeShape:
    """The paper's qualitative claim on a state-heavy model."""

    def test_stcg_beats_baselines_on_queue(self):
        from repro.core import StcgConfig, StcgGenerator

        budget = 6.0
        stcg = StcgGenerator(
            build_queue_model(), StcgConfig(budget_s=budget, seed=5)
        ).run()
        sldv = SldvGenerator(
            build_queue_model(), SldvConfig(budget_s=budget, seed=5, max_depth=4)
        ).run()
        assert stcg.decision >= sldv.decision
        assert stcg.decision == 1.0
