"""Tests for interval-domain abstract interpretation and dead-branch proofs."""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    ABSTRACT,
    find_dead_branches,
    hull,
    interval_eval,
    lift,
    state_envelope,
)
from repro.coverage import CoverageCollector
from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.types import INT, REAL
from repro.model import ModelBuilder, Simulator
from repro.model.inputs import random_input
from repro.solver.interval import BOOL_UNKNOWN, Interval

from tests.conftest import build_queue_model


class TestLiftHull:
    def test_lift_scalars(self):
        assert lift(3) == Interval.point(3.0)
        assert lift(True).definitely_true
        assert lift(False).definitely_false

    def test_lift_tuple(self):
        lifted = lift((1, 2))
        assert lifted == (Interval.point(1.0), Interval.point(2.0))

    def test_lift_idempotent(self):
        interval = Interval(0.0, 1.0)
        assert lift(interval) is interval

    def test_hull_scalars(self):
        assert hull(Interval.point(1.0), Interval.point(5.0)) == Interval(1.0, 5.0)

    def test_hull_arrays(self):
        a = (Interval.point(0.0), Interval.point(1.0))
        b = (Interval.point(2.0), Interval.point(1.0))
        assert hull(a, b) == (Interval(0.0, 2.0), Interval.point(1.0))


class TestAbstractOps:
    def test_arithmetic(self):
        result = ABSTRACT.add(Interval(0, 1), Interval(10, 20))
        assert result == Interval(10.0, 21.0)

    def test_comparison_lattice(self):
        assert ABSTRACT.lt(Interval(0, 1), Interval(5, 9)).definitely_true
        assert ABSTRACT.lt(Interval(5, 9), Interval(0, 1)).definitely_false
        undecided = ABSTRACT.lt(Interval(0, 9), Interval(5, 6))
        assert not undecided.definitely_true
        assert not undecided.definitely_false

    def test_ite_merges(self):
        merged = ABSTRACT.ite(BOOL_UNKNOWN, Interval.point(1.0), Interval.point(9.0))
        assert merged == Interval(1.0, 9.0)

    def test_ite_definite_selects(self):
        assert ABSTRACT.ite(lift(True), 1, 9) == Interval.point(1.0)
        assert ABSTRACT.ite(lift(False), 1, 9) == Interval.point(9.0)

    def test_select_hulls_range(self):
        arr = (Interval.point(1.0), Interval.point(5.0), Interval.point(3.0))
        assert ABSTRACT.select(arr, Interval(0, 1)) == Interval(1.0, 5.0)

    def test_store_strong_update_at_point(self):
        arr = (Interval.point(1.0), Interval.point(2.0))
        stored = ABSTRACT.store(arr, Interval.point(0.0), Interval.point(9.0))
        assert stored[0] == Interval.point(9.0)
        assert stored[1] == Interval.point(2.0)

    def test_store_weak_update_when_unknown(self):
        arr = (Interval.point(1.0), Interval.point(2.0))
        stored = ABSTRACT.store(arr, Interval(0, 1), Interval.point(9.0))
        assert stored[0] == Interval(1.0, 9.0)
        assert stored[1] == Interval(2.0, 9.0)


class TestIntervalEval:
    I = Var("i", INT)

    def test_matches_concrete_on_points(self):
        expr = x.add(x.mul(self.I, 3), 7)
        result = interval_eval(expr, {"i": Interval.point(5.0)})
        assert result == Interval.point(22.0)

    @given(lo=st.integers(-20, 20), width=st.integers(0, 10),
           probe=st.floats(0, 1))
    @settings(max_examples=60, deadline=None)
    def test_soundness(self, lo, width, probe):
        """Concrete results always lie inside the abstract result."""
        from repro.expr.evaluator import evaluate

        expr = x.add(x.mul(self.I, 3), x.absolute(x.sub(self.I, 4)))
        hi = lo + width
        concrete_i = int(lo + (hi - lo) * probe)
        abstract = interval_eval(expr, {"i": Interval(lo, hi)})
        concrete = evaluate(expr, {"i": concrete_i})
        assert abstract.lo - 1e-9 <= concrete <= abstract.hi + 1e-9


class TestEnvelope:
    def test_envelope_contains_initial_state(self, counter_model):
        envelope = state_envelope(counter_model)
        count = envelope["$store.count"]
        assert count.contains(0.0)

    def test_envelope_contains_random_trajectories(self):
        """Soundness: every concretely reachable state is inside the envelope."""
        compiled = build_queue_model()
        envelope = state_envelope(compiled)
        simulator = Simulator(compiled, CoverageCollector(compiled.registry))
        rng = random.Random(5)
        for _ in range(60):
            simulator.step(random_input(compiled.inports, rng))
            for path, value in simulator.get_state().values.items():
                abstract = envelope[path]
                if isinstance(value, tuple):
                    for element, itv in zip(value, abstract):
                        assert itv.contains(float(element)), path
                else:
                    assert abstract.contains(float(value)), path

    def test_envelope_terminates_on_unbounded_counter(self):
        b = ModelBuilder("Grow")
        u = b.inport("u", INT, 0, 1)
        b.data_store("acc", INT, 0)
        b.store_write("acc", b.add(b.store_read("acc"), u))
        b.outport("y", b.store_read("acc"))
        compiled = b.compile()
        envelope = state_envelope(compiled)  # must not loop forever
        assert envelope["$store.acc"].hi == float("inf")  # widened


class TestDeadBranchProofs:
    def build_with_dead_switch(self):
        b = ModelBuilder("Dead")
        u = b.inport("u", REAL, 0.0, 10.0)
        clamped = b.saturate(u, 0.0, 10.0)
        impossible = b.compare(clamped, ">", 50.0, name="impossible")
        b.outport("y", b.switch(impossible, b.const(1), b.const(0), name="dead_sw"))
        live = b.compare(u, ">", 5.0, name="possible")
        b.outport("z", b.switch(live, b.const(1), b.const(0), name="live_sw"))
        return b.compile()

    def test_dead_switch_proven(self):
        compiled = self.build_with_dead_switch()
        dead = {branch.label for branch in find_dead_branches(compiled)}
        assert "dead_sw:true" in dead

    def test_live_switch_not_reported(self):
        compiled = self.build_with_dead_switch()
        dead = {branch.label for branch in find_dead_branches(compiled)}
        assert "live_sw:true" not in dead
        assert "live_sw:false" not in dead

    def test_twc_dead_logic_proven(self):
        from repro.models import get_benchmark

        compiled = get_benchmark("TWC").build()
        dead = {branch.label for branch in find_dead_branches(compiled)}
        assert "dead_switch1:true" in dead
        assert "dead_switch2:true" in dead

    def test_proofs_never_claim_coverable_branches(self):
        """Anything STCG actually covers must not be 'proven' dead."""
        from repro.core import StcgConfig, StcgGenerator

        compiled = build_queue_model()
        dead_ids = {b.branch_id for b in find_dead_branches(compiled)}
        generator = StcgGenerator(
            build_queue_model(), StcgConfig(budget_s=6, seed=0)
        )
        generator.run()
        covered = generator.collector.covered_branch_ids
        assert not (dead_ids & covered)

    def test_stcg_integration_skips_proven_dead(self):
        from repro.core import StcgConfig, StcgGenerator
        from repro.models import get_benchmark

        generator = StcgGenerator(
            get_benchmark("TWC").build(),
            StcgConfig(budget_s=4, seed=0, prove_dead_branches=True),
        )
        result = generator.run()
        assert result.stats["proven_dead"] == 3
