"""Structural tests for all eight benchmark models + registry."""

import random

import pytest

from repro.coverage import CoverageCollector
from repro.errors import ReproError
from repro.model import Simulator
from repro.model.inputs import random_input
from repro.models import (
    BENCHMARKS,
    SIMPLE_CPUTASK,
    benchmark_names,
    get_benchmark,
)


@pytest.fixture(params=BENCHMARKS, ids=lambda m: m.name)
def bench_model(request):
    return request.param


class TestRegistry:
    def test_eight_models(self):
        assert len(BENCHMARKS) == 8
        assert benchmark_names() == [
            "CPUTask", "AFC", "TWC", "NICProtocol", "UTPC",
            "LANSwitch", "LEDLC", "TCP",
        ]

    def test_lookup_case_insensitive(self):
        assert get_benchmark("cputask").name == "CPUTask"

    def test_unknown_lookup(self):
        with pytest.raises(ReproError):
            get_benchmark("nope")


class TestEveryModel:
    def test_builds(self, bench_model):
        compiled = bench_model.build()
        assert compiled.name == bench_model.name
        assert compiled.registry.n_branches > 10
        assert compiled.n_blocks > 20

    def test_fresh_build_each_time(self, bench_model):
        assert bench_model.build() is not bench_model.build()

    def test_simulates_100_random_steps(self, bench_model):
        compiled = bench_model.build()
        collector = CoverageCollector(compiled.registry)
        simulator = Simulator(compiled, collector)
        rng = random.Random(7)
        for _ in range(100):
            simulator.step(random_input(compiled.inports, rng))
        assert collector.decision_coverage() > 0.0

    def test_state_snapshot_roundtrip(self, bench_model):
        compiled = bench_model.build()
        simulator = Simulator(compiled)
        rng = random.Random(3)
        for _ in range(10):
            simulator.step(random_input(compiled.inports, rng))
        snapshot = simulator.get_state()
        probe = random_input(compiled.inports, rng)
        first = simulator.step(probe).outputs
        simulator.set_state(snapshot)
        second = simulator.step(probe).outputs
        assert first == second

    def test_one_step_encoding_builds(self, bench_model):
        from repro.solver.encoder import OneStepEncoding

        compiled = bench_model.build()
        simulator = Simulator(compiled)
        encoding = OneStepEncoding(compiled, simulator.get_state())
        # Every decision has conditions recorded for every outcome.
        for decision in compiled.registry.decisions:
            for branch in decision.branches:
                encoding.branch_condition(branch)

    def test_has_internal_state(self, bench_model):
        """Every benchmark is state-heavy by design."""
        compiled = bench_model.build()
        assert len(compiled.state_elements) >= 3

    def test_symbolic_concrete_agreement_on_random_walk(self, bench_model):
        """Spot-check the central property on every benchmark model."""
        from repro.expr.evaluator import evaluate
        from repro.solver.encoder import OneStepEncoding

        compiled = bench_model.build()
        collector = CoverageCollector(compiled.registry)
        simulator = Simulator(compiled, collector)
        rng = random.Random(1)
        for _ in range(5):
            simulator.step(random_input(compiled.inports, rng))
        state = simulator.get_state()
        inputs = random_input(compiled.inports, rng)
        encoding = OneStepEncoding(compiled, state)
        simulator.set_state(state)
        result = simulator.step(inputs)
        for decision_id, outcome in result.taken_outcomes.items():
            decision = compiled.registry.decision(decision_id)
            condition = encoding.branch_condition(decision.branches[outcome])
            assert evaluate(condition, inputs) is True, decision.path


class TestSimpleCPUTask:
    def test_exactly_13_branches(self):
        compiled = SIMPLE_CPUTASK.build()
        assert compiled.registry.n_branches == 13

    def test_branch_structure_matches_figure3(self):
        compiled = SIMPLE_CPUTASK.build()
        depths = [b.depth for b in compiled.registry.branches_by_depth()]
        assert depths.count(0) == 5  # B1..B5
        assert depths.count(1) == 8  # B6..B13
