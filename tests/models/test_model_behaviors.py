"""Behavioural tests: each benchmark model does what its spec says."""


from repro.coverage import CoverageCollector
from repro.model import Simulator
from repro.models import (
    build_cputask,
    build_lanswitch,
    build_ledlc,
    build_nicprotocol,
    build_simple_cputask,
    build_tcp,
    build_twc,
    build_utpc,
)
from repro.models import afc as afc_mod
from repro.models import lanswitch as lan_mod
from repro.models import ledlc as led_mod
from repro.models import nicprotocol as nic_mod
from repro.models import tcp as tcp_mod
from repro.models import utpc as utpc_mod
from repro.models.afc import build_afc


def sim(compiled):
    return Simulator(compiled, CoverageCollector(compiled.registry))


class TestCPUTask:
    IDLE = {"op": 0, "task_id": 0, "param": 0}

    def test_add_then_check_succeeds(self):
        s = sim(build_cputask())
        add = s.step({"op": 1, "task_id": 42, "param": 7})
        assert add.outputs["add_status"] == 1
        assert add.outputs["occupancy"] == 1
        chk = s.step({"op": 4, "task_id": 42, "param": 7})
        assert chk.outputs["chk_status"] == 1

    def test_check_wrong_param_fails(self):
        s = sim(build_cputask())
        s.step({"op": 1, "task_id": 42, "param": 7})
        chk = s.step({"op": 4, "task_id": 42, "param": 8})
        assert chk.outputs["chk_status"] == 0

    def test_delete_requires_id_and_param_match(self):
        s = sim(build_cputask())
        s.step({"op": 1, "task_id": 42, "param": 7})
        wrong = s.step({"op": 2, "task_id": 42, "param": 9})
        assert wrong.outputs["del_status"] == 0
        right = s.step({"op": 2, "task_id": 42, "param": 7})
        assert right.outputs["del_status"] == 1
        assert right.outputs["occupancy"] == 0

    def test_queue_fills_at_8(self):
        s = sim(build_cputask())
        for i in range(8):
            result = s.step({"op": 1, "task_id": i + 1, "param": 1})
            assert result.outputs["add_status"] == 1
        overflow = s.step({"op": 1, "task_id": 99, "param": 1})
        assert overflow.outputs["add_status"] == 0

    def test_modify_protected_task_fails(self):
        s = sim(build_cputask())
        # param >= 48 gets boosted (+64), making the stored value >= 56.
        s.step({"op": 1, "task_id": 5, "param": 50})
        result = s.step({"op": 3, "task_id": 5, "param": 1})
        assert result.outputs["mod_status"] == 0

    def test_modify_normal_task_succeeds(self):
        s = sim(build_cputask())
        s.step({"op": 1, "task_id": 5, "param": 10})
        result = s.step({"op": 3, "task_id": 5, "param": 20})
        assert result.outputs["mod_status"] == 1

    def test_invalid_opcode(self):
        s = sim(build_cputask())
        result = s.step({"op": 5, "task_id": 0, "param": 0})
        assert result.outputs["invalid"] == 1

    def test_simple_variant_semantics(self):
        s = sim(build_simple_cputask())
        assert s.step({"op": 1, "task_id": 3, "param": 2}).outputs["add_ok"] == 1
        assert s.step({"op": 2, "task_id": 3, "param": 2}).outputs["del_ok"] == 1
        assert s.step({"op": 2, "task_id": 3, "param": 2}).outputs["del_ok"] == 0

    def test_simple_variant_queue_full(self):
        s = sim(build_simple_cputask())
        for i in range(3):
            assert s.step({"op": 1, "task_id": i + 1, "param": 0}).outputs["add_ok"] == 1
        assert s.step({"op": 1, "task_id": 9, "param": 0}).outputs["add_ok"] == 0


class TestAFC:
    COLD = {"throttle": 0.0, "rpm": 0.0, "o2": 0.5, "temp": 10.0, "cal": 0}

    def test_starts_in_startup(self):
        s = sim(build_afc())
        assert s.step(self.COLD).outputs["mode"] == afc_mod.MODE_STARTUP

    def test_mode_progression(self):
        s = sim(build_afc())
        s.step({**self.COLD, "rpm": 900.0})  # -> Warmup
        result = s.step({**self.COLD, "rpm": 900.0, "temp": 80.0})
        assert result.outputs["mode"] == afc_mod.MODE_NORMAL

    def test_power_mode_needs_throttle_and_rpm(self):
        s = sim(build_afc())
        s.step({**self.COLD, "rpm": 900.0})
        s.step({**self.COLD, "rpm": 900.0, "temp": 80.0})
        result = s.step(
            {"throttle": 90.0, "rpm": 3000.0, "o2": 0.5, "temp": 80.0,
             "cal": 0}
        )
        assert result.outputs["mode"] == afc_mod.MODE_POWER

    def test_fault_after_sustained_lean(self):
        s = sim(build_afc())
        s.step({**self.COLD, "rpm": 900.0})
        s.step({**self.COLD, "rpm": 900.0, "temp": 80.0})
        lean = {"throttle": 20.0, "rpm": 2000.0, "o2": 0.95, "temp": 80.0,
                "cal": 0}
        mode = None
        for _ in range(afc_mod.FAULT_DEBOUNCE + 2):
            mode = s.step(lean).outputs["mode"]
        assert mode == afc_mod.MODE_FAULT

    def test_fault_recovery_requires_cal_echo(self):
        s = sim(build_afc())
        s.step({**self.COLD, "rpm": 900.0})
        s.step({**self.COLD, "rpm": 900.0, "temp": 80.0})
        lean = {"throttle": 20.0, "rpm": 2000.0, "o2": 0.95, "temp": 80.0,
                "cal": 0}
        for _ in range(afc_mod.FAULT_DEBOUNCE + 2):
            s.step(lean)
        healthy = {"throttle": 20.0, "rpm": 2000.0, "o2": 0.5, "temp": 80.0}
        wrong = s.step({**healthy, "cal": 1})
        assert wrong.outputs["mode"] == afc_mod.MODE_FAULT
        key = (2000 * 7 + 13) % 4096
        right = s.step({**healthy, "cal": key})
        assert right.outputs["mode"] == afc_mod.MODE_NORMAL

    def test_overrev_cuts_fuel(self):
        s = sim(build_afc())
        result = s.step(
            {"throttle": 50.0, "rpm": 7000.0, "o2": 0.5, "temp": 50.0,
             "cal": 0}
        )
        assert result.outputs["fuel_pulse"] <= 0.1


class TestTWC:
    CRUISE = {
        "target_speed": 100.0, "wheel_speed": 100.0, "train_speed": 100.0,
        "brake_demand": 0.0, "track_grade": 0.0,
    }

    def test_slip_detection(self):
        s = sim(build_twc())
        slipping = {**self.CRUISE, "wheel_speed": 130.0}
        result = s.step(slipping)
        # Normal -> Detected on the first slipping step.
        assert result.outputs["mode"] == 1

    def test_no_slip_stays_normal(self):
        s = sim(build_twc())
        assert s.step(self.CRUISE).outputs["mode"] == 0

    def test_emergency_after_repeated_episodes(self):
        s = sim(build_twc())
        modes = []
        for _ in range(30):
            modes.append(s.step({**self.CRUISE, "wheel_speed": 130.0}).outputs["mode"])
            modes.append(s.step(self.CRUISE).outputs["mode"])
        assert 4 in modes  # Emergency reached eventually

    def test_emergency_brake_force(self):
        s = sim(build_twc())
        # Drive into emergency, then check the brake output.
        for _ in range(30):
            result = s.step({**self.CRUISE, "wheel_speed": 130.0})
            if result.outputs["mode"] == 4:
                break
            result = s.step(self.CRUISE)
            if result.outputs["mode"] == 4:
                break
        if result.outputs["mode"] == 4:
            assert result.outputs["brake_force"] == 150.0

    def test_dead_logic_outputs_zero(self):
        s = sim(build_twc())
        assert s.step(self.CRUISE).outputs["diag"] == 0


class TestNICProtocol:
    BASE = {
        "event": 0, "msg_id": 0, "ack_id": 0, "payload": 0, "crc": 0,
        "rx_valid": False, "tx_enable": True,
    }

    def test_handshake_to_wait_ack(self):
        s = sim(build_nicprotocol())
        s.step({**self.BASE, "event": nic_mod.EV_TX_REQUEST, "msg_id": 77})
        s.step({**self.BASE, "event": nic_mod.EV_BUS_GRANT})
        result = s.step({**self.BASE, "event": nic_mod.EV_TX_DONE})
        assert result.outputs["state"] == nic_mod.ST_WAIT_ACK

    def test_matching_ack_completes(self):
        s = sim(build_nicprotocol())
        s.step({**self.BASE, "event": nic_mod.EV_TX_REQUEST, "msg_id": 77})
        s.step({**self.BASE, "event": nic_mod.EV_BUS_GRANT})
        s.step({**self.BASE, "event": nic_mod.EV_TX_DONE})
        result = s.step(
            {**self.BASE, "event": nic_mod.EV_RX_ACK, "ack_id": 77}
        )
        assert result.outputs["state"] == nic_mod.ST_IDLE

    def test_wrong_ack_does_not_complete(self):
        s = sim(build_nicprotocol())
        s.step({**self.BASE, "event": nic_mod.EV_TX_REQUEST, "msg_id": 77})
        s.step({**self.BASE, "event": nic_mod.EV_BUS_GRANT})
        s.step({**self.BASE, "event": nic_mod.EV_TX_DONE})
        result = s.step(
            {**self.BASE, "event": nic_mod.EV_RX_ACK, "ack_id": 78}
        )
        assert result.outputs["state"] == nic_mod.ST_WAIT_ACK

    def test_crc_check(self):
        s = sim(build_nicprotocol())
        good = s.step(
            {**self.BASE, "rx_valid": True, "payload": 10, "msg_id": 20,
             "crc": 30}
        )
        assert good.outputs["bad_frame"] == 0
        assert good.outputs["accepted_count"] == 1
        bad = s.step(
            {**self.BASE, "rx_valid": True, "payload": 10, "msg_id": 20,
             "crc": 31}
        )
        assert bad.outputs["bad_frame"] == 1

    def test_diag_class_biases_payload(self):
        s = sim(build_nicprotocol())
        result = s.step(
            {**self.BASE, "rx_valid": True, "payload": 5, "msg_id": 1500,
             "crc": (5 + 1500) % 256}
        )
        assert result.outputs["rx_data"] == 1005


class TestUTPC:
    BASE = {
        "depth": 10.0, "thrust_cmd": 0.0, "battery_v": 55.0,
        "motor_temp": 20.0, "charger": False, "enable": True,
        "arm_cmd": 0, "arm_code": 0,
    }

    @staticmethod
    def arm(s):
        """Run the challenge/response handshake (code 10 -> response 78)."""
        s.step({**TestUTPC.BASE, "arm_cmd": 1, "arm_code": 10})
        challenge = (10 * 3 + 11) % 256  # 41
        response = (challenge + 37) % 256  # 78
        return s.step({**TestUTPC.BASE, "arm_cmd": 2, "arm_code": response})

    def test_arming_handshake(self):
        s = sim(build_utpc())
        result = self.arm(s)
        assert result.outputs["armed"] == 1

    def test_wrong_response_does_not_arm(self):
        s = sim(build_utpc())
        s.step({**self.BASE, "arm_cmd": 1, "arm_code": 10})
        result = s.step({**self.BASE, "arm_cmd": 2, "arm_code": 0})
        assert result.outputs["armed"] == 0

    def test_disarm(self):
        s = sim(build_utpc())
        self.arm(s)
        result = s.step({**self.BASE, "arm_cmd": 3})
        assert result.outputs["armed"] == 0

    def test_unarmed_thruster_stays_off(self):
        s = sim(build_utpc())
        for _ in range(4):
            result = s.step({**self.BASE, "thrust_cmd": 80.0})
        assert result.outputs["thrust_out"] == 0.0

    def test_deadband(self):
        s = sim(build_utpc())
        self.arm(s)
        assert s.step({**self.BASE, "thrust_cmd": 3.0}).outputs["thrust_out"] == 0.0

    def test_thrust_passes_when_healthy(self):
        s = sim(build_utpc())
        self.arm(s)
        out = 0.0
        for _ in range(6):
            out = s.step({**self.BASE, "thrust_cmd": 80.0}).outputs["thrust_out"]
        assert out > 50.0

    def test_charging_cuts_output(self):
        s = sim(build_utpc())
        s.step({**self.BASE, "charger": True})
        result = s.step({**self.BASE, "charger": True, "thrust_cmd": 80.0})
        assert result.outputs["thrust_out"] == 0.0
        assert result.outputs["batt_state"] == utpc_mod.BATT_CHARGING

    def test_low_battery_reduces_limit(self):
        s = sim(build_utpc())
        low = {**self.BASE, "battery_v": 40.0}
        for _ in range(4):
            result = s.step(low)
        assert result.outputs["batt_state"] in (
            utpc_mod.BATT_LOW, utpc_mod.BATT_CRITICAL
        )
        assert result.outputs["limit_pct"] <= 60.0

    def test_disable_cuts_output(self):
        s = sim(build_utpc())
        for _ in range(4):
            result = s.step(
                {**self.BASE, "thrust_cmd": 80.0, "enable": False}
            )
        assert result.outputs["thrust_out"] == 0.0


class TestLANSwitch:
    def frame(self, **kw):
        base = {
            "frame_type": lan_mod.FRAME_DATA, "src_mac": 1, "dst_mac": 2,
            "in_port": 0, "vlan": 0,
        }
        base.update(kw)
        return base

    def test_unknown_destination_floods(self):
        s = sim(build_lanswitch())
        result = s.step(self.frame(src_mac=10, dst_mac=20))
        assert result.outputs["fwd_port"] == -1

    def test_learning_then_forwarding(self):
        s = sim(build_lanswitch())
        s.step(self.frame(src_mac=10, dst_mac=99, in_port=2))
        result = s.step(self.frame(src_mac=20, dst_mac=10, in_port=0))
        assert result.outputs["fwd_port"] == 2

    def test_same_port_filtered(self):
        s = sim(build_lanswitch())
        s.step(self.frame(src_mac=10, dst_mac=99, in_port=2))
        result = s.step(self.frame(src_mac=20, dst_mac=10, in_port=2))
        assert result.outputs["fwd_port"] == -2

    def test_vlan_mismatch_floods(self):
        s = sim(build_lanswitch())
        s.step(self.frame(src_mac=10, dst_mac=99, in_port=2, vlan=1))
        result = s.step(self.frame(src_mac=20, dst_mac=10, in_port=0, vlan=3))
        assert result.outputs["fwd_port"] == -1

    def test_aging_expires_entries(self):
        s = sim(build_lanswitch())
        s.step(self.frame(src_mac=10, dst_mac=99, in_port=2))
        assert s.step(self.frame(src_mac=1, dst_mac=10)).outputs["fwd_port"] == 2
        for _ in range(lan_mod.MAX_AGE + 1):
            s.step(self.frame(frame_type=lan_mod.FRAME_AGE_TICK))
        result = s.step(self.frame(src_mac=1, dst_mac=10, in_port=0))
        assert result.outputs["fwd_port"] == -1  # aged out: flood

    def test_flush_all(self):
        s = sim(build_lanswitch())
        s.step(self.frame(src_mac=10, dst_mac=99))
        result = s.step(self.frame(frame_type=lan_mod.FRAME_FLUSH_ALL))
        assert result.outputs["occupancy"] == 0

    def test_flush_port(self):
        s = sim(build_lanswitch())
        s.step(self.frame(src_mac=10, dst_mac=99, in_port=1))
        s.step(self.frame(src_mac=11, dst_mac=99, in_port=2))
        result = s.step(
            self.frame(frame_type=lan_mod.FRAME_FLUSH_PORT, in_port=1)
        )
        assert result.outputs["occupancy"] == 1

    def test_eviction_when_full(self):
        s = sim(build_lanswitch())
        for mac in range(1, lan_mod.TABLE_LEN + 2):
            result = s.step(self.frame(src_mac=mac, dst_mac=99))
        assert result.outputs["occupancy"] == lan_mod.TABLE_LEN


class TestLEDLC:
    BASE = {"cmd": 0, "arg": 0, "row": 0, "supply_ma": 100.0}

    def test_mode_progression_changes_pwm(self):
        s = sim(build_ledlc())
        s.step({**self.BASE, "cmd": led_mod.CMD_SET_MODE, "arg": 3})
        out = 0.0
        for _ in range(8):
            out = s.step(self.BASE).outputs["pwm"]
        assert out > 0.9

    def test_mode_clamped_to_valid_range(self):
        s = sim(build_ledlc())
        result = s.step({**self.BASE, "cmd": led_mod.CMD_SET_MODE, "arg": 15})
        assert result.outputs["mode_ack"] == led_mod.MODE_HIGH

    def test_row_levels(self):
        s = sim(build_ledlc())
        result = s.step(
            {**self.BASE, "cmd": led_mod.CMD_SET_ROW, "row": 2, "arg": 9}
        )
        assert result.outputs["row_ack"] == 2

    def test_hard_overcurrent_latches_fault(self):
        s = sim(build_ledlc())
        result = s.step({**self.BASE, "supply_ma": 1000.0})
        assert result.outputs["fault"] == 1
        # Fault persists without a reset.
        result = s.step(self.BASE)
        assert result.outputs["fault"] == 1

    def test_fault_reset_requires_recovered_supply(self):
        s = sim(build_ledlc())
        s.step({**self.BASE, "supply_ma": 1000.0})
        still = s.step(
            {**self.BASE, "cmd": led_mod.CMD_RESET_FAULT, "supply_ma": 950.0}
        )
        assert still.outputs["fault"] == 1
        cleared = s.step(
            {**self.BASE, "cmd": led_mod.CMD_RESET_FAULT, "supply_ma": 100.0}
        )
        assert cleared.outputs["fault"] == 0

    def test_load_shedding(self):
        s = sim(build_ledlc())
        s.step({**self.BASE, "cmd": led_mod.CMD_SET_MODE, "arg": 3})
        for row in range(4):
            s.step(
                {**self.BASE, "cmd": led_mod.CMD_SET_ROW, "row": row,
                 "arg": 15}
            )
        result = s.step(self.BASE)
        assert result.outputs["shed_rows"] > 0


class TestTCP:
    BASE = {
        "event": 0, "syn": False, "ack": False, "fin": False, "rst": False,
        "seq": 0, "ackno": 0,
    }

    def passive_handshake(self, s):
        s.step({**self.BASE, "event": tcp_mod.EV_PASSIVE_OPEN})
        s.step(
            {**self.BASE, "event": tcp_mod.EV_SEGMENT, "syn": True, "seq": 50}
        )
        return s.step(
            {**self.BASE, "event": tcp_mod.EV_SEGMENT, "ack": True,
             "ackno": tcp_mod.ISS + 1}
        )

    def test_three_way_handshake(self):
        s = sim(build_tcp())
        result = self.passive_handshake(s)
        assert result.outputs["state"] == tcp_mod.S_ESTABLISHED

    def test_third_handshake_requires_exact_ack(self):
        s = sim(build_tcp())
        s.step({**self.BASE, "event": tcp_mod.EV_PASSIVE_OPEN})
        s.step(
            {**self.BASE, "event": tcp_mod.EV_SEGMENT, "syn": True, "seq": 50}
        )
        wrong = s.step(
            {**self.BASE, "event": tcp_mod.EV_SEGMENT, "ack": True,
             "ackno": tcp_mod.ISS + 2}
        )
        assert wrong.outputs["state"] == tcp_mod.S_SYN_RCVD

    def test_active_open_handshake(self):
        s = sim(build_tcp())
        s.step({**self.BASE, "event": tcp_mod.EV_ACTIVE_OPEN})
        result = s.step(
            {**self.BASE, "event": tcp_mod.EV_SEGMENT, "syn": True,
             "ack": True, "seq": 7, "ackno": tcp_mod.ISS + 1}
        )
        assert result.outputs["state"] == tcp_mod.S_ESTABLISHED

    def test_teardown_to_time_wait(self):
        s = sim(build_tcp())
        self.passive_handshake(s)
        s.step({**self.BASE, "event": tcp_mod.EV_CLOSE})  # FIN_WAIT_1
        result = s.step(
            {**self.BASE, "event": tcp_mod.EV_SEGMENT, "ack": True,
             "ackno": tcp_mod.ISS + 2}
        )
        assert result.outputs["state"] == tcp_mod.S_FIN_WAIT_2
        result = s.step(
            {**self.BASE, "event": tcp_mod.EV_SEGMENT, "fin": True,
             "seq": 51}
        )
        assert result.outputs["state"] == tcp_mod.S_TIME_WAIT
        result = s.step({**self.BASE, "event": tcp_mod.EV_TIMEOUT})
        assert result.outputs["state"] == tcp_mod.S_CLOSED

    def test_rst_resets(self):
        s = sim(build_tcp())
        self.passive_handshake(s)
        result = s.step(
            {**self.BASE, "event": tcp_mod.EV_SEGMENT, "rst": True}
        )
        assert result.outputs["state"] == tcp_mod.S_CLOSED

    def test_in_order_fin_required(self):
        s = sim(build_tcp())
        self.passive_handshake(s)
        out_of_order = s.step(
            {**self.BASE, "event": tcp_mod.EV_SEGMENT, "fin": True,
             "seq": 200}
        )
        assert out_of_order.outputs["state"] == tcp_mod.S_ESTABLISHED

    def test_malformed_segment_counted(self):
        s = sim(build_tcp())
        result = s.step(
            {**self.BASE, "event": tcp_mod.EV_SEGMENT, "syn": True,
             "fin": True}
        )
        assert result.outputs["bad_count"] == 1
