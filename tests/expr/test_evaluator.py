"""Tests for concrete expression evaluation."""

import math

import pytest

from repro.errors import EvalError
from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.evaluator import Evaluator, evaluate
from repro.expr.types import ArrayType, BOOL, INT, REAL

I = Var("i", INT)
J = Var("j", INT)
R = Var("r", REAL)
B = Var("b", BOOL)
A = Var("a", ArrayType(INT, 3))


class TestBasicEvaluation:
    def test_variable_lookup(self):
        assert evaluate(I, {"i": 7}) == 7

    def test_missing_variable(self):
        with pytest.raises(EvalError):
            evaluate(I, {})

    def test_variable_coerced_to_declared_type(self):
        assert evaluate(R, {"r": 3}) == 3.0
        assert isinstance(evaluate(R, {"r": 3}), float)
        assert evaluate(B, {"b": 1}) is True

    @pytest.mark.parametrize(
        "expr,env,expected",
        [
            (x.add(I, J), {"i": 2, "j": 3}, 5),
            (x.sub(I, J), {"i": 2, "j": 3}, -1),
            (x.mul(I, R), {"i": 2, "r": 1.5}, 3.0),
            (x.div(I, J), {"i": 1, "j": 4}, 0.25),
            (x.idiv(I, J), {"i": -7, "j": 2}, -3),
            (x.mod(I, J), {"i": -7, "j": 2}, -1),
            (x.minimum(I, J), {"i": 4, "j": 9}, 4),
            (x.maximum(I, J), {"i": 4, "j": 9}, 9),
            (x.neg(I), {"i": 5}, -5),
            (x.absolute(I), {"i": -5}, 5),
            (x.lt(I, J), {"i": 1, "j": 2}, True),
            (x.ge(I, J), {"i": 1, "j": 2}, False),
            (x.eq(I, J), {"i": 2, "j": 2}, True),
            (x.land(B, x.lt(I, J)), {"b": True, "i": 0, "j": 1}, True),
            (x.lor(B, x.lt(I, J)), {"b": False, "i": 5, "j": 1}, False),
            (x.lxor(B, B), {"b": True}, False),
            (x.lnot(B), {"b": False}, True),
        ],
    )
    def test_operators(self, expr, env, expected):
        assert evaluate(expr, env) == expected

    def test_floor_ceil_to_int(self):
        assert evaluate(x.floor(R), {"r": 2.9}) == 2
        assert evaluate(x.ceil(R), {"r": 2.1}) == 3
        assert evaluate(x.to_int(R), {"r": -2.9}) == -2


class TestTotality:
    def test_division_by_zero_saturates(self):
        assert evaluate(x.div(I, J), {"i": 1, "j": 0}) == math.inf
        assert evaluate(x.div(I, J), {"i": -1, "j": 0}) == -math.inf
        assert evaluate(x.div(I, J), {"i": 0, "j": 0}) == 0.0

    def test_integer_division_by_zero_is_zero(self):
        assert evaluate(x.idiv(I, J), {"i": 5, "j": 0}) == 0
        assert evaluate(x.mod(I, J), {"i": 5, "j": 0}) == 0


class TestLaziness:
    def test_ite_unselected_branch_not_evaluated(self):
        # idiv by zero is total, so use an out-of-range select to probe.
        bad = x.select(A, x.lift(10) if False else Var("k", INT))
        expr = x.ite(B, x.lift(1), bad)
        assert evaluate(expr, {"b": True, "a": (1, 2, 3), "k": 99}) == 1

    def test_and_short_circuit(self):
        bad = x.eq(x.select(A, Var("k", INT)), 0)
        expr = x.land(B, bad)
        assert evaluate(expr, {"b": False, "a": (1, 2, 3), "k": 99}) is False

    def test_or_short_circuit(self):
        bad = x.eq(x.select(A, Var("k", INT)), 0)
        expr = x.lor(B, bad)
        assert evaluate(expr, {"b": True, "a": (1, 2, 3), "k": 99}) is True


class TestArrays:
    def test_select(self):
        assert evaluate(x.select(A, I), {"a": (5, 6, 7), "i": 2}) == 7

    def test_select_out_of_range(self):
        with pytest.raises(EvalError):
            evaluate(x.select(A, I), {"a": (5, 6, 7), "i": 3})

    def test_store(self):
        stored = x.store(A, I, x.lift(42))
        assert evaluate(stored, {"a": (5, 6, 7), "i": 1}) == (5, 42, 7)

    def test_store_then_select(self):
        expr = x.select(x.store(A, I, x.lift(42)), J)
        assert evaluate(expr, {"a": (5, 6, 7), "i": 1, "j": 1}) == 42
        assert evaluate(expr, {"a": (5, 6, 7), "i": 1, "j": 0}) == 5


class TestMemoization:
    def test_shared_subtree_evaluated_once(self):
        shared = x.add(I, J)
        expr = x.add(shared, shared)
        evaluator = Evaluator({"i": 1, "j": 2})
        assert evaluator.evaluate(expr) == 6
        # The memo contains the shared node exactly once.
        assert id(shared) in evaluator._memo

    def test_memo_not_shared_across_instances(self):
        expr = x.add(I, J)
        assert evaluate(expr, {"i": 1, "j": 2}) == 3
        assert evaluate(expr, {"i": 10, "j": 20}) == 30
