"""Tests for concrete operator semantics (C-style division, totality)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.expr import ast, semantics


class TestCIdiv:
    @pytest.mark.parametrize(
        "a,b,expected",
        [
            (7, 2, 3),
            (-7, 2, -3),
            (7, -2, -3),
            (-7, -2, 3),
            (0, 5, 0),
            (5, 0, 0),  # guarded: division by zero is 0
        ],
    )
    def test_cases(self, a, b, expected):
        assert semantics.c_idiv(a, b) == expected

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_matches_c_truncation(self, a, b):
        if b == 0:
            assert semantics.c_idiv(a, b) == 0
        else:
            assert semantics.c_idiv(a, b) == int(a / b)


class TestCMod:
    @pytest.mark.parametrize(
        "a,b,expected",
        [(7, 3, 1), (-7, 3, -1), (7, -3, 1), (-7, -3, -1), (5, 0, 0)],
    )
    def test_cases(self, a, b, expected):
        assert semantics.c_mod(a, b) == expected

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    def test_division_identity(self, a, b):
        """a == (a // b) * b + (a % b) for nonzero b (C identity)."""
        if b != 0:
            assert semantics.c_idiv(a, b) * b + semantics.c_mod(a, b) == a

    @given(st.integers(-1000, 1000), st.integers(1, 1000))
    def test_remainder_sign_follows_dividend(self, a, b):
        r = semantics.c_mod(a, b)
        if r != 0:
            assert (r > 0) == (a > 0)


class TestRealDiv:
    def test_normal(self):
        assert semantics.real_div(1.0, 4.0) == 0.25

    def test_zero_over_zero(self):
        assert semantics.real_div(0.0, 0.0) == 0.0

    def test_positive_over_zero(self):
        assert semantics.real_div(3.0, 0.0) == math.inf

    def test_negative_over_zero(self):
        assert semantics.real_div(-3.0, 0.0) == -math.inf


class TestApplyUnary:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            (ast.NEG, 5, -5),
            (ast.NOT, True, False),
            (ast.ABS, -2.5, 2.5),
            (ast.FLOOR, 2.7, 2),
            (ast.CEIL, 2.2, 3),
            (ast.TO_INT, -2.9, -2),
            (ast.TO_REAL, 3, 3.0),
            (ast.TO_BOOL, 0, False),
            (ast.TO_BOOL, -1, True),
        ],
    )
    def test_cases(self, op, value, expected):
        assert semantics.apply_unary(op, value) == expected

    def test_unknown_op(self):
        from repro.errors import EvalError

        with pytest.raises(EvalError):
            semantics.apply_unary("bogus", 1)


class TestApplyBinary:
    def test_unknown_op(self):
        from repro.errors import EvalError

        with pytest.raises(EvalError):
            semantics.apply_binary("bogus", 1, 2)

    def test_implies(self):
        assert semantics.apply_binary(ast.IMPLIES, True, False) is False
        assert semantics.apply_binary(ast.IMPLIES, False, False) is True
