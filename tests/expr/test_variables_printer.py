"""Tests for variable utilities and the printer."""

import pytest

from repro.expr import ops as x
from repro.expr.ast import Const, Var
from repro.expr.evaluator import evaluate
from repro.expr.printer import to_string
from repro.expr.types import ArrayType, BOOL, INT
from repro.expr.variables import (
    free_variables,
    free_variables_of,
    node_count,
    substitute,
)

I = Var("i", INT)
J = Var("j", INT)
B = Var("b", BOOL)


class TestFreeVariables:
    def test_single_variable(self):
        assert list(free_variables(I)) == ["i"]

    def test_composite(self):
        expr = x.land(x.lt(I, J), B)
        assert sorted(free_variables(expr)) == ["b", "i", "j"]

    def test_constant_has_none(self):
        assert free_variables(x.lift(5)) == {}

    def test_duplicates_counted_once(self):
        expr = x.add(I, x.add(I, I))
        assert list(free_variables(expr)) == ["i"]

    def test_union_over_many(self):
        result = free_variables_of([I, J, x.lt(I, J)])
        assert sorted(result) == ["i", "j"]


class TestSubstitute:
    def test_constant_binding_folds(self):
        expr = x.add(I, J)
        result = substitute(expr, {"i": x.lift(2), "j": x.lift(3)})
        assert isinstance(result, Const)
        assert result.const_value() == 5

    def test_partial_binding(self):
        expr = x.add(I, J)
        result = substitute(expr, {"i": x.lift(0)})
        # add(0, j) folds to j by identity.
        assert result is J

    def test_expression_binding(self):
        expr = x.lt(I, 10)
        result = substitute(expr, {"i": x.add(J, 1)})
        assert evaluate(result, {"j": 8}) is True
        assert evaluate(result, {"j": 10}) is False

    def test_untouched_expression_returned_identically(self):
        expr = x.add(I, J)
        assert substitute(expr, {"z": x.lift(1)}) is expr

    def test_ite_condition_folds(self):
        expr = x.ite(B, I, J)
        result = substitute(expr, {"b": x.lift(True)})
        assert result is I

    def test_select_folds_through_substitution(self):
        arr = Var("a", ArrayType(INT, 3))
        expr = x.select(arr, I)
        result = substitute(expr, {"a": x.lift((7, 8, 9)), "i": x.lift(2)})
        assert result.const_value() == 9


class TestNodeCount:
    def test_leaf(self):
        assert node_count(I) == 1

    def test_shared_nodes_counted_once(self):
        shared = x.add(I, J)
        expr = x.add(shared, shared)
        assert node_count(expr) == 4  # expr, shared, i, j


class TestPrinter:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            (x.lift(True), "true"),
            (x.lift(False), "false"),
            (x.lift(3), "3"),
            (x.lift(2.0), "2.0"),
            (x.lift((1, 2)), "[1, 2]"),
            (I, "i"),
            (x.add(I, J), "i + j"),
            (x.neg(I), "-i"),
            (x.lnot(B), "!b"),
            (x.minimum(I, J), "min(i, j)"),
            (x.absolute(I), "abs(i)"),
            (x.lt(I, J), "i < j"),
            (x.land(B, B), "b"),
        ],
    )
    def test_rendering(self, expr, expected):
        assert to_string(expr) == expected

    def test_precedence_parentheses(self):
        expr = x.mul(x.add(I, J), 2)
        assert to_string(expr) == "(i + j) * 2"

    def test_no_redundant_parentheses(self):
        expr = x.add(x.mul(I, 2), J)
        assert to_string(expr) == "i * 2 + j"

    def test_ite_rendering(self):
        assert to_string(x.ite(B, I, J)) == "ite(b, i, j)"

    def test_select_rendering(self):
        arr = Var("a", ArrayType(INT, 3))
        assert to_string(x.select(arr, I)) == "a[i]"

    def test_store_rendering(self):
        arr = Var("a", ArrayType(INT, 3))
        assert to_string(x.store(arr, I, J)) == "store(a, i, j)"
