"""Tests for the expression DSL parser."""

import pytest

from repro.errors import ExprParseError
from repro.expr.ast import Var
from repro.expr.evaluator import evaluate
from repro.expr.parser import parse_expr
from repro.expr.printer import to_string
from repro.expr.types import ArrayType, BOOL, INT, REAL

SYMBOLS = {
    "a": Var("a", INT, -100, 100),
    "b": Var("b", INT, -100, 100),
    "r": Var("r", REAL),
    "p": Var("p", BOOL),
    "q": Var("q", BOOL),
    "arr": Var("arr", ArrayType(INT, 4)),
}


def run(text, **env):
    return evaluate(parse_expr(text, SYMBOLS), env)


class TestLiterals:
    def test_integer(self):
        assert run("42") == 42

    def test_float(self):
        assert run("2.5") == 2.5

    def test_leading_dot_float(self):
        assert run(".5") == 0.5

    def test_booleans(self):
        assert run("true") is True
        assert run("false") is False


class TestPrecedence:
    def test_mul_before_add(self):
        assert run("2 + 3 * 4") == 14

    def test_parentheses(self):
        assert run("(2 + 3) * 4") == 20

    def test_unary_minus(self):
        assert run("-a + 1", a=5) == -4

    def test_comparison_after_arithmetic(self):
        assert run("a + 1 < b * 2", a=1, b=2) is True

    def test_and_before_or(self):
        # p || q && false  ==  p || (q && false)
        assert run("p || q && false", p=True, q=True) is True
        assert run("p || q && false", p=False, q=True) is False

    def test_not_binds_tight(self):
        assert run("!p && q", p=False, q=True) is True

    def test_ternary(self):
        assert run("a > 0 ? 10 : 20", a=1) == 10
        assert run("a > 0 ? 10 : 20", a=-1) == 20

    def test_nested_ternary(self):
        text = "a > 0 ? 1 : a < 0 ? -1 : 0"
        assert run(text, a=5) == 1
        assert run(text, a=-5) == -1
        assert run(text, a=0) == 0


class TestOperators:
    def test_integer_division(self):
        assert run("7 // 2") == 3

    def test_real_division(self):
        assert run("7 / 2") == 3.5

    def test_modulo(self):
        assert run("a % 3", a=7) == 1

    def test_xor(self):
        assert run("p ^ q", p=True, q=False) is True

    def test_implies(self):
        assert run("p => q", p=True, q=False) is False
        assert run("p => q", p=False, q=False) is True

    @pytest.mark.parametrize("op,expected", [
        ("<", True), ("<=", True), (">", False), (">=", False),
        ("==", False), ("!=", True),
    ])
    def test_comparisons(self, op, expected):
        assert run(f"a {op} b", a=1, b=2) is expected


class TestFunctions:
    def test_min_max(self):
        assert run("min(a, b)", a=3, b=5) == 3
        assert run("max(a, b)", a=3, b=5) == 5

    def test_abs(self):
        assert run("abs(a)", a=-4) == 4

    def test_ite(self):
        assert run("ite(p, a, b)", p=True, a=1, b=2) == 1

    def test_sat(self):
        assert run("sat(a, 0, 10)", a=50) == 10

    def test_casts(self):
        assert run("int(r)", r=2.9) == 2
        assert run("real(a)", a=3) == 3.0
        assert run("bool(a)", a=0) is False

    def test_floor_ceil(self):
        assert run("floor(r)", r=1.9) == 1
        assert run("ceil(r)", r=1.1) == 2

    def test_store_and_index(self):
        assert run("store(arr, 1, 9)[1]", arr=(0, 0, 0, 0)) == 9

    def test_array_indexing(self):
        assert run("arr[a]", arr=(10, 20, 30, 40), a=2) == 30

    def test_wrong_arity(self):
        with pytest.raises(ExprParseError):
            parse_expr("min(a)", SYMBOLS)

    def test_unknown_function(self):
        with pytest.raises(ExprParseError):
            parse_expr("frobnicate(a)", SYMBOLS)


class TestErrors:
    def test_unknown_identifier(self):
        with pytest.raises(ExprParseError):
            parse_expr("nope + 1", SYMBOLS)

    def test_trailing_garbage(self):
        with pytest.raises(ExprParseError):
            parse_expr("a + 1 )", SYMBOLS)

    def test_unbalanced_parens(self):
        with pytest.raises(ExprParseError):
            parse_expr("(a + 1", SYMBOLS)

    def test_bad_character(self):
        with pytest.raises(ExprParseError):
            parse_expr("a $ b", SYMBOLS)

    def test_missing_ternary_colon(self):
        with pytest.raises(ExprParseError):
            parse_expr("p ? a", SYMBOLS)


class TestCallableSymbols:
    def test_callable_resolver(self):
        expr = parse_expr("a + 1", lambda name: SYMBOLS.get(name))
        assert evaluate(expr, {"a": 1}) == 2

    def test_callable_returning_none(self):
        with pytest.raises(ExprParseError):
            parse_expr("zzz", lambda name: None)


class TestPrinterRoundTrip:
    @pytest.mark.parametrize("text", [
        "a + b * 2",
        "(a + b) * 2",
        "a < b && p",
        "!p || q",
        "min(a, b) - max(a, 1)",
        "ite(p, a, b)",
        "a % 3 == 1",
        "arr[a + 1]",
        "a // b + r",
    ])
    def test_round_trip_semantics(self, text):
        """Parsing the printed form gives a semantically equal expression."""
        expr = parse_expr(text, SYMBOLS)
        reparsed = parse_expr(to_string(expr), SYMBOLS)
        env = {"a": 2, "b": 3, "r": 1.5, "p": True, "q": False,
               "arr": (9, 8, 7, 6)}
        assert evaluate(expr, env) == evaluate(reparsed, env)
