"""Tests for the smart constructors: folding, identities, type checking."""

import pytest

from repro.errors import ExprTypeError
from repro.expr import ops as x
from repro.expr.ast import Binary, Const, Select, Store, Var
from repro.expr.types import ArrayType, BOOL, INT, REAL

I = Var("i", INT, -10, 10)
J = Var("j", INT, -10, 10)
R = Var("r", REAL)
B = Var("b", BOOL)
C = Var("c", BOOL)


class TestLift:
    def test_plain_values(self):
        assert x.lift(3).const_value() == 3
        assert x.lift(True).ty is BOOL
        assert x.lift(2.5).ty is REAL

    def test_expr_passthrough(self):
        assert x.lift(I) is I


class TestArithmeticFolding:
    @pytest.mark.parametrize(
        "fn,a,b,expected",
        [
            (x.add, 2, 3, 5),
            (x.sub, 7, 3, 4),
            (x.mul, 4, 5, 20),
            (x.div, 7, 2, 3.5),
            (x.idiv, 7, 2, 3),
            (x.idiv, -7, 2, -3),
            (x.mod, 7, 3, 1),
            (x.mod, -7, 3, -1),
            (x.minimum, 3, 8, 3),
            (x.maximum, 3, 8, 8),
        ],
    )
    def test_constant_fold(self, fn, a, b, expected):
        result = fn(a, b)
        assert isinstance(result, Const)
        assert result.const_value() == expected

    def test_add_zero_identity(self):
        assert x.add(I, 0) is I
        assert x.add(0, I) is I

    def test_sub_zero_identity(self):
        assert x.sub(I, 0) is I

    def test_mul_one_identity(self):
        assert x.mul(I, 1) is I
        assert x.mul(1, I) is I

    def test_mul_zero_annihilates(self):
        assert x.mul(I, 0).const_value() == 0

    def test_div_produces_real(self):
        assert x.div(I, J).ty is REAL

    def test_idiv_produces_int(self):
        assert x.idiv(R, 2).ty is INT if x.idiv(x.to_int(R), 2).ty is INT else True
        assert x.idiv(I, J).ty is INT

    def test_type_widening(self):
        assert x.add(I, R).ty is REAL
        assert x.add(I, J).ty is INT

    def test_bool_operand_rejected(self):
        with pytest.raises(ExprTypeError):
            x.add(B, 1)

    def test_neg_double_cancels(self):
        assert x.neg(x.neg(I)) is I

    def test_neg_folds(self):
        assert x.neg(5).const_value() == -5

    def test_abs_folds(self):
        assert x.absolute(-4).const_value() == 4

    def test_saturate_builds_minmax(self):
        result = x.saturate(I, 0, 5)
        assert result.ty is INT
        from repro.expr.evaluator import evaluate

        assert evaluate(result, {"i": 9}) == 5
        assert evaluate(result, {"i": -3}) == 0
        assert evaluate(result, {"i": 2}) == 2


class TestCasts:
    def test_to_int_truncates_toward_zero(self):
        assert x.to_int(-2.7).const_value() == -2

    def test_to_int_noop_on_int(self):
        assert x.to_int(I) is I

    def test_to_real_noop_on_real(self):
        assert x.to_real(R) is R

    def test_to_bool_nonzero(self):
        assert x.to_bool(3).const_value() is True
        assert x.to_bool(0.0).const_value() is False

    def test_floor_ceil(self):
        assert x.floor(2.7).const_value() == 2
        assert x.ceil(2.1).const_value() == 3
        assert x.floor(I) is I  # already integral


class TestRelational:
    @pytest.mark.parametrize(
        "fn,a,b,expected",
        [
            (x.lt, 1, 2, True),
            (x.le, 2, 2, True),
            (x.gt, 1, 2, False),
            (x.ge, 2, 2, True),
            (x.eq, 3, 3, True),
            (x.ne, 3, 3, False),
        ],
    )
    def test_constant_fold(self, fn, a, b, expected):
        assert fn(a, b).const_value() is expected

    def test_self_comparison_folds(self):
        assert x.le(I, I).const_value() is True
        assert x.lt(I, I).const_value() is False
        assert x.eq(I, I).const_value() is True
        assert x.ne(I, I).const_value() is False

    def test_result_is_bool(self):
        assert x.lt(I, J).ty is BOOL

    def test_bool_equality_allowed(self):
        assert x.eq(B, C).ty is BOOL

    def test_bool_ordering_rejected(self):
        with pytest.raises(ExprTypeError):
            x.lt(B, C)


class TestBoolean:
    def test_and_short_circuits_constants(self):
        assert x.land(True, B) is B
        assert x.land(False, B).const_value() is False
        assert x.land(B, True) is B

    def test_or_short_circuits_constants(self):
        assert x.lor(False, B) is B
        assert x.lor(True, B).const_value() is True

    def test_idempotence(self):
        assert x.land(B, B) is B
        assert x.lor(B, B) is B

    def test_not_folds(self):
        assert x.lnot(True).const_value() is False

    def test_double_negation_cancels(self):
        assert x.lnot(x.lnot(B)) is B

    def test_not_pushes_through_relation(self):
        negated = x.lnot(x.lt(I, J))
        assert isinstance(negated, Binary)
        assert negated.op == "ge"

    def test_xor_folds(self):
        assert x.lxor(True, False).const_value() is True
        assert x.lxor(True, True).const_value() is False

    def test_implies_rewrites(self):
        result = x.implies(B, C)
        from repro.expr.evaluator import evaluate

        for b in (True, False):
            for c in (True, False):
                assert evaluate(result, {"b": b, "c": c}) == ((not b) or c)

    def test_conjoin_empty_is_true(self):
        assert x.conjoin([]).const_value() is True

    def test_disjoin_empty_is_false(self):
        assert x.disjoin([]).const_value() is False

    def test_numeric_operand_rejected(self):
        with pytest.raises(ExprTypeError):
            x.land(I, B)


class TestIte:
    def test_constant_condition_selects(self):
        assert x.ite(True, I, J) is I
        assert x.ite(False, I, J) is J

    def test_equal_branches_collapse(self):
        assert x.ite(B, I, I) is I

    def test_bool_branches_become_logic(self):
        # ite(c, true, b) == c || b
        result = x.ite(B, True, C)
        from repro.expr.evaluator import evaluate

        for b in (True, False):
            for c in (True, False):
                assert evaluate(result, {"b": b, "c": c}) == (b or c)

    def test_numeric_branches_widen(self):
        assert x.ite(B, I, R).ty is REAL

    def test_mismatched_branches_rejected(self):
        with pytest.raises(ExprTypeError):
            x.ite(B, I, C)

    def test_non_bool_condition_rejected(self):
        with pytest.raises(ExprTypeError):
            x.ite(I, J, J)


class TestArrays:
    ARR = x.lift((10, 20, 30))

    def test_select_constant(self):
        assert x.select(self.ARR, 1).const_value() == 20

    def test_select_out_of_range_rejected(self):
        with pytest.raises(ExprTypeError):
            x.select(self.ARR, 5)

    def test_select_requires_array(self):
        with pytest.raises(ExprTypeError):
            x.select(I, 0)

    def test_store_constant_folds(self):
        stored = x.store(self.ARR, 1, 99)
        assert stored.const_value() == (10, 99, 30)

    def test_select_of_store_same_index(self):
        stored = x.store(self.ARR, x.lift(1), Var("v", INT))
        assert x.select(stored, 1).name == "v"

    def test_select_of_store_different_index(self):
        stored = x.store(self.ARR, x.lift(1), Var("v", INT))
        assert x.select(stored, 2).const_value() == 30

    def test_symbolic_select_builds_node(self):
        result = x.select(self.ARR, I)
        assert isinstance(result, Select)
        assert result.ty is INT

    def test_symbolic_store_builds_node(self):
        result = x.store(self.ARR, I, 7)
        assert isinstance(result, Store)
        assert result.ty == ArrayType(INT, 3)
