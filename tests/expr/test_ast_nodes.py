"""Tests for AST node structural identity, traversal and error paths."""

import pytest

from repro.errors import ExprError
from repro.expr import ops as x
from repro.expr.ast import Binary, Const, FALSE, TRUE, Unary, Var
from repro.expr.types import ArrayType, BOOL, INT, REAL


class TestStructuralIdentity:
    def test_const_equality(self):
        assert Const(5) == Const(5)
        assert Const(5) != Const(6)
        assert hash(Const(5)) == hash(Const(5))

    def test_const_bool_vs_int_distinct(self):
        # Python's True == 1, but typed constants must differ.
        assert Const(True) != Const(1)

    def test_var_identity_by_name_and_type(self):
        assert Var("a", INT) == Var("a", INT)
        assert Var("a", INT) != Var("a", REAL)
        assert Var("a", INT) != Var("b", INT)

    def test_var_bounds_not_part_of_identity(self):
        assert Var("a", INT, 0, 5) == Var("a", INT, -9, 9)

    def test_binary_structural(self):
        a = x.add(Var("i", INT), 1)
        b = x.add(Var("i", INT), 1)
        assert a == b
        assert hash(a) == hash(b)

    def test_binary_op_matters(self):
        i = Var("i", INT)
        assert x.add(i, 1) != x.sub(i, 1)

    def test_expr_vs_other_types(self):
        assert Const(5).__eq__(5) is NotImplemented
        assert (Const(5) == 5) is False

    def test_nodes_usable_in_sets(self):
        i = Var("i", INT)
        seen = {x.add(i, 1), x.add(i, 1), x.add(i, 2)}
        assert len(seen) == 2


class TestTraversal:
    def test_walk_preorder(self):
        i, j = Var("i", INT), Var("j", INT)
        expr = x.add(x.mul(i, 2), j)
        nodes = list(expr.walk())
        assert nodes[0] is expr
        names = [n.name for n in nodes if isinstance(n, Var)]
        assert names == ["i", "j"]

    def test_children_of_each_kind(self):
        i = Var("i", INT)
        arr = Var("a", ArrayType(INT, 3))
        assert Const(1).children == ()
        assert i.children == ()
        assert len(x.neg(i).children) == 1
        assert len(x.add(i, 1).children) == 2
        assert len(x.ite(Var("b", BOOL), i, i + 0 if False else Const(0)).children) == 3
        assert len(x.select(arr, i).children) == 2
        assert len(x.store(arr, i, Const(7)).children) == 3

    def test_walk_handles_deep_chains(self):
        expr = Var("i", INT)
        for _ in range(3000):  # far beyond the recursion limit
            expr = Unary("neg", expr, INT)
        assert sum(1 for _ in expr.walk()) == 3001


class TestErrorPaths:
    def test_const_value_on_non_const(self):
        with pytest.raises(ExprError):
            Var("i", INT).const_value()

    def test_unknown_unary_op(self):
        with pytest.raises(ExprError):
            Unary("sqrt", Const(1), INT)

    def test_unknown_binary_op(self):
        with pytest.raises(ExprError):
            Binary("pow", Const(1), Const(2), INT)

    def test_shared_singletons(self):
        assert TRUE.const_value() is True
        assert FALSE.const_value() is False

    def test_repr_renders(self):
        assert "i + 1" in repr(x.add(Var("i", INT), 1))
