"""Tests and property tests for NNF conversion and branch distance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import ops as x
from repro.expr.ast import Binary, Unary, Var
from repro.expr.distance import DistanceEvaluator, branch_distance
from repro.expr.evaluator import evaluate
from repro.expr.nnf import to_nnf
from repro.expr.types import BOOL, INT

I = Var("i", INT, -50, 50)
J = Var("j", INT, -50, 50)
P = Var("p", BOOL)
Q = Var("q", BOOL)


class TestNnfBasics:
    def test_push_not_through_and(self):
        expr = to_nnf(x.lnot(x.land(P, Q)))
        assert evaluate(expr, {"p": True, "q": False}) is True
        assert evaluate(expr, {"p": True, "q": True}) is False

    def test_push_not_through_relation(self):
        expr = to_nnf(x.lnot(x.lt(I, J)))
        assert isinstance(expr, Binary)
        assert expr.op == "ge"

    def test_ite_expansion(self):
        ite = x.ite(P, x.lt(I, J), x.gt(I, J))
        expr = to_nnf(ite)
        for p in (True, False):
            for i, j in ((1, 2), (2, 1), (1, 1)):
                env = {"p": p, "i": i, "j": j}
                assert evaluate(expr, env) == evaluate(ite, env)

    def test_xor_expansion(self):
        expr = to_nnf(x.lxor(P, Q))
        for p in (True, False):
            for q in (True, False):
                assert evaluate(expr, {"p": p, "q": q}) == (p != q)

    def test_negated_xor_is_equivalence(self):
        expr = to_nnf(x.lnot(x.lxor(P, Q)))
        for p in (True, False):
            for q in (True, False):
                assert evaluate(expr, {"p": p, "q": q}) == (p == q)

    def test_non_bool_rejected(self):
        from repro.errors import ExprTypeError

        with pytest.raises(ExprTypeError):
            to_nnf(I)


# -- random boolean expression generator for property tests -----------------

_atoms = st.sampled_from(
    [P, Q, x.lt(I, J), x.ge(I, 3), x.eq(J, -5), x.ne(I, J)]
)


def _combine(children):
    left, right = children
    return st.sampled_from(["and", "or", "xor", "not"]).map(
        lambda op: {
            "and": x.land(left, right),
            "or": x.lor(left, right),
            "xor": x.lxor(left, right),
            "not": x.lnot(left),
        }[op]
    )


bool_exprs = st.recursive(
    _atoms,
    lambda inner: st.tuples(inner, inner).flatmap(_combine),
    max_leaves=8,
)

envs = st.fixed_dictionaries(
    {
        "p": st.booleans(),
        "q": st.booleans(),
        "i": st.integers(-50, 50),
        "j": st.integers(-50, 50),
    }
)


class TestNnfProperties:
    @given(expr=bool_exprs, env=envs)
    @settings(max_examples=200, deadline=None)
    def test_nnf_preserves_semantics(self, expr, env):
        assert evaluate(to_nnf(expr), env) == evaluate(expr, env)

    @given(expr=bool_exprs)
    @settings(max_examples=100, deadline=None)
    def test_nnf_has_no_negated_composites(self, expr):
        nnf = to_nnf(expr)
        for node in nnf.walk():
            if isinstance(node, Unary) and node.op == "not":
                # NOT may only wrap opaque atoms (boolean vars).
                assert isinstance(node.arg, Var)


class TestBranchDistance:
    def test_zero_iff_satisfied_simple(self):
        constraint = x.lt(I, 10)
        assert branch_distance(constraint, {"i": 5}) == 0.0
        assert branch_distance(constraint, {"i": 15}) > 0.0

    def test_distance_decreases_toward_solution(self):
        constraint = x.eq(I, 42)
        d_far = branch_distance(constraint, {"i": 0})
        d_near = branch_distance(constraint, {"i": 40})
        assert d_near < d_far

    def test_and_sums(self):
        constraint = x.land(x.ge(I, 10), x.ge(J, 10))
        one_violated = branch_distance(constraint, {"i": 10, "j": 0})
        both_violated = branch_distance(constraint, {"i": 0, "j": 0})
        assert 0 < one_violated < both_violated

    def test_or_takes_minimum(self):
        constraint = x.lor(x.ge(I, 10), x.ge(J, 10))
        assert branch_distance(constraint, {"i": 10, "j": -50}) == 0.0
        d = branch_distance(constraint, {"i": 8, "j": -50})
        # Distance should reflect the nearer disjunct (i side).
        assert 0 < d <= 2.0

    def test_boolean_atom_distance(self):
        assert branch_distance(P, {"p": True}) == 0.0
        assert branch_distance(P, {"p": False}) > 0.0

    def test_ne_distance(self):
        constraint = x.ne(I, 5)
        assert branch_distance(constraint, {"i": 6}) == 0.0
        assert branch_distance(constraint, {"i": 5}) > 0.0

    def test_failure_distance_on_error(self):
        from repro.expr.distance import FAILURE_DISTANCE

        arr = Var("a", __import__("repro.expr.types", fromlist=["ArrayType"]).ArrayType(INT, 2))
        constraint = x.eq(x.select(arr, I), 0)
        # Index out of range -> failure distance, not an exception.
        assert (
            branch_distance(constraint, {"a": (1, 2), "i": 9})
            == FAILURE_DISTANCE
        )

    @given(expr=bool_exprs, env=envs)
    @settings(max_examples=200, deadline=None)
    def test_zero_distance_iff_satisfied(self, expr, env):
        distance = branch_distance(expr, env)
        satisfied = evaluate(expr, env)
        if satisfied:
            assert distance == 0.0
        else:
            assert distance > 0.0

    def test_reusable_evaluator(self):
        evaluator = DistanceEvaluator(to_nnf(x.lt(I, 0)))
        assert evaluator.distance({"i": -1}) == 0.0
        assert evaluator.distance({"i": 1}) > 0.0
