"""Tests for the expression type system."""

import pytest

from repro.errors import ExprTypeError
from repro.expr.types import (
    ArrayType,
    BOOL,
    INT,
    REAL,
    coerce_value,
    join_numeric,
    type_of_value,
)


class TestScalarPredicates:
    def test_bool_predicates(self):
        assert BOOL.is_bool
        assert not BOOL.is_numeric
        assert BOOL.is_scalar

    def test_int_predicates(self):
        assert INT.is_int
        assert INT.is_numeric
        assert not INT.is_bool

    def test_real_predicates(self):
        assert REAL.is_real
        assert REAL.is_numeric
        assert REAL.is_scalar

    def test_scalars_are_not_arrays(self):
        for ty in (BOOL, INT, REAL):
            assert not ty.is_array

    def test_repr(self):
        assert repr(INT) == "int"
        assert repr(REAL) == "real"
        assert repr(BOOL) == "bool"


class TestArrayType:
    def test_construction(self):
        arr = ArrayType(INT, 4)
        assert arr.is_array
        assert not arr.is_scalar
        assert arr.elem is INT
        assert arr.length == 4

    def test_repr(self):
        assert repr(ArrayType(REAL, 3)) == "real[3]"

    def test_zero_length_rejected(self):
        with pytest.raises(ExprTypeError):
            ArrayType(INT, 0)

    def test_negative_length_rejected(self):
        with pytest.raises(ExprTypeError):
            ArrayType(INT, -1)

    def test_nested_arrays_rejected(self):
        with pytest.raises(ExprTypeError):
            ArrayType(ArrayType(INT, 2), 2)

    def test_equality(self):
        assert ArrayType(INT, 4) == ArrayType(INT, 4)
        assert ArrayType(INT, 4) != ArrayType(INT, 5)
        assert ArrayType(INT, 4) != ArrayType(REAL, 4)


class TestJoinNumeric:
    def test_int_int(self):
        assert join_numeric(INT, INT) is INT

    def test_int_real_widens(self):
        assert join_numeric(INT, REAL) is REAL
        assert join_numeric(REAL, INT) is REAL

    def test_real_real(self):
        assert join_numeric(REAL, REAL) is REAL

    def test_bool_rejected(self):
        with pytest.raises(ExprTypeError):
            join_numeric(BOOL, INT)


class TestTypeOfValue:
    @pytest.mark.parametrize(
        "value,expected",
        [(True, BOOL), (False, BOOL), (0, INT), (-3, INT), (1.5, REAL)],
    )
    def test_scalars(self, value, expected):
        assert type_of_value(value) is expected

    def test_bool_before_int(self):
        # bool is a subclass of int in Python; must map to BOOL.
        assert type_of_value(True) is BOOL

    def test_tuple(self):
        assert type_of_value((1, 2, 3)) == ArrayType(INT, 3)
        assert type_of_value((1.0, 2.0)) == ArrayType(REAL, 2)

    def test_empty_tuple_rejected(self):
        with pytest.raises(ExprTypeError):
            type_of_value(())

    def test_unsupported_value(self):
        with pytest.raises(ExprTypeError):
            type_of_value("string")


class TestCoerceValue:
    def test_to_bool(self):
        assert coerce_value(1, BOOL) is True
        assert coerce_value(0.0, BOOL) is False

    def test_to_int_truncates(self):
        assert coerce_value(2.9, INT) == 2
        assert isinstance(coerce_value(True, INT), int)

    def test_to_real(self):
        assert coerce_value(3, REAL) == 3.0
        assert isinstance(coerce_value(3, REAL), float)

    def test_array_coercion(self):
        arr = ArrayType(REAL, 3)
        assert coerce_value([1, 2, 3], arr) == (1.0, 2.0, 3.0)

    def test_array_length_mismatch(self):
        with pytest.raises(ExprTypeError):
            coerce_value((1, 2), ArrayType(INT, 3))
