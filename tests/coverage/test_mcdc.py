"""Tests for masking-MCDC analysis."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.types import BOOL
from repro.coverage.mcdc import (
    determines,
    independence_pairs,
    mcdc_covered_atoms,
    outcome_of,
)
from repro.coverage.registry import ConditionPoint


def point_for(structure, n):
    return ConditionPoint(0, "p", tuple(f"c{i}" for i in range(n)), structure)


C = [Var(f"c{i}", BOOL) for i in range(4)]

AND2 = point_for(x.land(C[0], C[1]), 2)
OR2 = point_for(x.lor(C[0], C[1]), 2)
XOR2 = point_for(x.lxor(C[0], C[1]), 2)
AND3 = point_for(x.land(x.land(C[0], C[1]), C[2]), 3)
MIXED = point_for(x.lor(x.land(C[0], C[1]), C[2]), 3)


class TestOutcome:
    def test_and(self):
        assert outcome_of(AND2, (True, True)) is True
        assert outcome_of(AND2, (True, False)) is False

    def test_mixed(self):
        assert outcome_of(MIXED, (False, False, True)) is True
        assert outcome_of(MIXED, (True, True, False)) is True
        assert outcome_of(MIXED, (True, False, False)) is False


class TestDetermines:
    def test_and_first_condition(self):
        # c0 determines only when c1 is true.
        assert determines(AND2, (True, True), 0)
        assert determines(AND2, (False, True), 0)
        assert not determines(AND2, (True, False), 0)

    def test_or_masking(self):
        # c0 determines only when c1 is false.
        assert determines(OR2, (False, False), 0)
        assert not determines(OR2, (False, True), 0)

    def test_xor_always_determines(self):
        for vector in itertools.product([True, False], repeat=2):
            assert determines(XOR2, vector, 0)
            assert determines(XOR2, vector, 1)


class TestMcdcCoverage:
    def test_and_minimal_set(self):
        vectors = {(True, True), (True, False), (False, True)}
        assert mcdc_covered_atoms(AND2, vectors) == {0, 1}

    def test_and_insufficient_set(self):
        vectors = {(True, True), (False, False)}
        assert mcdc_covered_atoms(AND2, vectors) == set()

    def test_or_minimal_set(self):
        vectors = {(False, False), (True, False), (False, True)}
        assert mcdc_covered_atoms(OR2, vectors) == {0, 1}

    def test_and3_requires_n_plus_one(self):
        vectors = {
            (True, True, True),
            (False, True, True),
            (True, False, True),
            (True, True, False),
        }
        assert mcdc_covered_atoms(AND3, vectors) == {0, 1, 2}

    def test_empty_vectors(self):
        assert mcdc_covered_atoms(AND2, set()) == set()

    def test_partial_coverage(self):
        vectors = {(True, True), (False, True)}  # only c0 flips
        assert mcdc_covered_atoms(AND2, vectors) == {0}

    def test_mixed_structure(self):
        vectors = {
            (True, True, False),   # outcome True via c0&c1
            (False, True, False),  # outcome False
            (True, False, False),  # outcome False
            (True, False, True),   # outcome True via c2
        }
        covered = mcdc_covered_atoms(MIXED, vectors)
        assert covered == {0, 1, 2}


class TestIndependencePairs:
    def test_pairs_witness_flip(self):
        vectors = {(True, True), (True, False), (False, True)}
        pairs = independence_pairs(AND2, vectors)
        assert set(pairs) == {0, 1}
        for index, (pos, neg) in pairs.items():
            assert pos[index] is True
            assert neg[index] is False
            assert outcome_of(AND2, pos) != outcome_of(AND2, neg)


class TestExhaustiveProperty:
    @given(st.integers(0, 15))
    @settings(max_examples=16, deadline=None)
    def test_full_truth_table_covers_all_determinable(self, _):
        """With every vector observed, every atom with a determining
        vector pair is covered."""
        all_vectors = set(itertools.product([True, False], repeat=3))
        covered = mcdc_covered_atoms(MIXED, all_vectors)
        assert covered == {0, 1, 2}
