"""MCDC edge cases: single-condition decisions, masked conditions, and
duplicate registration of the same objective across test cases.

Complements ``test_mcdc.py`` (which pins the mainline masking-MCDC
semantics) with the boundary behaviour the provenance ledger leans on:
every obligation the collector reports as *newly* satisfied must be new,
exactly once, no matter how many cases re-observe the same vectors.
"""

import itertools

from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.types import BOOL
from repro.coverage.collector import CoverageCollector, ConditionObligation
from repro.coverage.mcdc import (
    determines,
    independence_pairs,
    mcdc_covered_atoms,
    outcome_of,
)
from repro.coverage.registry import ConditionPoint, CoverageRegistry


def point_for(structure, n):
    return ConditionPoint(0, "p", tuple(f"c{i}" for i in range(n)), structure)


C = [Var(f"c{i}", BOOL) for i in range(3)]

SINGLE = point_for(C[0], 1)
NOT_SINGLE = point_for(x.lnot(C[0]), 1)
AND2 = point_for(x.land(C[0], C[1]), 2)
OR3 = point_for(x.lor(x.lor(C[0], C[1]), C[2]), 3)


class TestSingleConditionDecisions:
    def test_single_atom_always_determines(self):
        assert determines(SINGLE, (True,), 0)
        assert determines(SINGLE, (False,), 0)
        assert determines(NOT_SINGLE, (True,), 0)

    def test_both_polarities_cover_the_atom(self):
        assert mcdc_covered_atoms(SINGLE, {(True,), (False,)}) == {0}

    def test_one_polarity_is_not_enough(self):
        # The derivative holds, but MCDC needs the flip witnessed.
        assert mcdc_covered_atoms(SINGLE, {(True,)}) == set()
        assert mcdc_covered_atoms(SINGLE, {(False,)}) == set()

    def test_negated_single_atom_pairs_invert_outcomes(self):
        pairs = independence_pairs(NOT_SINGLE, {(True,), (False,)})
        assert set(pairs) == {0}
        pos, neg = pairs[0]
        assert outcome_of(NOT_SINGLE, pos) is False
        assert outcome_of(NOT_SINGLE, neg) is True


class TestMaskedConditions:
    def test_masked_atom_never_determines(self):
        # In OR3, c2 only determines when c0 and c1 are both false; every
        # observed vector here has c0 true, so c2 stays masked.
        vectors = {(True, False, False), (True, False, True),
                   (True, True, True)}
        assert mcdc_covered_atoms(OR3, vectors) == set()

    def test_unmasking_vector_completes_the_pair(self):
        vectors = {
            (False, False, True),   # c2 determines, true side
            (False, False, False),  # c2 determines, false side
        }
        assert mcdc_covered_atoms(OR3, vectors) == {2}

    def test_short_circuit_shape_in_and(self):
        # c1 observed at both polarities, but only ever under c0=False —
        # masked by the short-circuiting side, so no MCDC credit.
        vectors = {(False, True), (False, False)}
        covered = mcdc_covered_atoms(AND2, vectors)
        assert 1 not in covered
        # c0's derivative also never holds here (needs c1 true with the
        # flip witnessed): {FT} determines but has no true-side partner.
        assert covered == set()

    def test_collector_reports_value_but_not_mcdc_for_masked_atom(self):
        registry = CoverageRegistry()
        point = registry.register_condition_point(
            "Logic1", ("a", "b"), x.land(C[0], C[1])
        )
        registry.freeze()
        collector = CoverageCollector(registry)
        newly = collector.on_condition_vector(point, (False, True))
        newly += collector.on_condition_vector(point, (False, False))
        kinds = {(o.atom, o.polarity, o.determining) for o in newly}
        # b's value obligations are satisfied at both polarities...
        assert (1, True, False) in kinds
        assert (1, False, False) in kinds
        # ...but no mcdc (determining) obligation for b fires: a=False
        # masks it in both vectors.
        assert (1, True, True) not in kinds
        assert (1, False, True) not in kinds


class TestDuplicateRegistrationAcrossCases:
    def build(self):
        registry = CoverageRegistry()
        point = registry.register_condition_point(
            "Logic1", ("a", "b"), x.land(C[0], C[1])
        )
        registry.freeze()
        return CoverageCollector(registry), point

    def test_repeated_vector_reports_nothing_new(self):
        collector, point = self.build()
        first = collector.on_condition_vector(point, (True, True))
        assert first  # value T for both atoms + determining T for both
        # The same vector from a later test case is a no-op.
        assert collector.on_condition_vector(point, (True, True)) == []
        assert collector.on_condition_vector(point, (True, True)) == []

    def test_each_obligation_reported_newly_exactly_once(self):
        collector, point = self.build()
        reported = []
        seen = []
        for vector in itertools.product([True, False], repeat=2):
            reported += collector.on_condition_vector(point, vector)
            seen.append(vector)
            # Replay every vector seen so far — duplicates across "cases".
            for earlier in seen:
                assert collector.on_condition_vector(point, earlier) == []
        assert len(reported) == len(set(reported))
        satisfied = {o for o in collector.all_condition_obligations()
                     if collector.is_obligation_satisfied(o)}
        assert set(reported) == satisfied

    def test_obligation_identity_is_value_based(self):
        # The dedup above relies on frozen-dataclass equality.
        a = ConditionObligation(0, 1, True, False)
        b = ConditionObligation(0, 1, True, False)
        assert a == b and hash(a) == hash(b)
        assert a != ConditionObligation(0, 1, True, True)
