"""Tests for the coverage registry, collector, and metric math."""

import pytest

from repro.errors import CoverageError
from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.types import BOOL
from repro.coverage import (
    CoverageCollector,
    CoverageRegistry,
    DecisionKind,
)


def make_registry():
    registry = CoverageRegistry()
    switch = registry.register_decision(
        "sw", DecisionKind.SWITCH, ("true", "false")
    )
    nested = registry.register_decision(
        "nested", DecisionKind.SWITCH, ("true", "false"),
        parent=switch.branches[0],
    )
    c0, c1 = Var("c0", BOOL), Var("c1", BOOL)
    point = registry.register_condition_point(
        "logic", ("a", "b"), x.land(c0, c1)
    )
    registry.freeze()
    return registry, switch, nested, point


class TestRegistry:
    def test_branch_ids_sequential(self):
        registry, switch, nested, _ = make_registry()
        assert [b.branch_id for b in registry.branches] == [0, 1, 2, 3]

    def test_parent_and_depth(self):
        registry, switch, nested, _ = make_registry()
        child = nested.branches[0]
        assert child.parent is switch.branches[0]
        assert child.depth == 1
        assert child.ancestors() == [switch.branches[0]]

    def test_extra_depth(self):
        registry = CoverageRegistry()
        decision = registry.register_decision(
            "t", DecisionKind.TRANSITION, ("taken", "not_taken"),
            extra_depth=2,
        )
        assert decision.branches[0].depth == 2

    def test_branches_by_depth_sorted(self):
        registry, *_ = make_registry()
        depths = [b.depth for b in registry.branches_by_depth()]
        assert depths == sorted(depths)

    def test_frozen_registry_rejects_registration(self):
        registry, *_ = make_registry()
        with pytest.raises(CoverageError):
            registry.register_decision("x", DecisionKind.SWITCH, ("a", "b"))

    def test_single_outcome_rejected(self):
        registry = CoverageRegistry()
        with pytest.raises(CoverageError):
            registry.register_decision("x", DecisionKind.SWITCH, ("only",))

    def test_empty_condition_point_rejected(self):
        registry = CoverageRegistry()
        with pytest.raises(CoverageError):
            registry.register_condition_point("p", (), x.lift(True))

    def test_labels(self):
        registry, switch, *_ = make_registry()
        assert switch.branches[0].label == "sw:true"


class TestCollectorBranches:
    def test_first_hit_is_new(self):
        registry, switch, *_ = make_registry()
        collector = CoverageCollector(registry)
        assert collector.on_branch(switch.branches[0]) is True
        assert collector.on_branch(switch.branches[0]) is False

    def test_decision_coverage_fraction(self):
        registry, switch, nested, _ = make_registry()
        collector = CoverageCollector(registry)
        collector.on_branch(switch.branches[0])
        assert collector.decision_coverage() == 0.25

    def test_uncovered_branches(self):
        registry, switch, nested, _ = make_registry()
        collector = CoverageCollector(registry)
        collector.on_branch(switch.branches[0])
        labels = [b.label for b in collector.uncovered_branches()]
        assert "sw:true" not in labels
        assert len(labels) == 3

    def test_empty_registry_full_coverage(self):
        registry = CoverageRegistry()
        registry.freeze()
        collector = CoverageCollector(registry)
        assert collector.decision_coverage() == 1.0
        assert collector.condition_coverage() == 1.0
        assert collector.mcdc_coverage() == 1.0


class TestCollectorConditions:
    def test_condition_coverage_counts_outcomes(self):
        registry, *_, point = make_registry()
        collector = CoverageCollector(registry)
        collector.on_condition_vector(point, (True, True))
        # Atoms a and b each seen true only: 2 of 4 outcomes.
        assert collector.condition_coverage() == 0.5
        collector.on_condition_vector(point, (False, False))
        assert collector.condition_coverage() == 1.0

    def test_new_obligations_reported_once(self):
        registry, *_, point = make_registry()
        collector = CoverageCollector(registry)
        first = collector.on_condition_vector(point, (True, False))
        assert first  # value obligations for a=T, b=F, plus mcdc for b=F
        again = collector.on_condition_vector(point, (True, False))
        assert again == []

    def test_mcdc_for_and_gate(self):
        registry, *_, point = make_registry()
        collector = CoverageCollector(registry)
        # Classic minimal AND set: TT, TF, FT.
        collector.on_condition_vector(point, (True, True))
        collector.on_condition_vector(point, (True, False))
        collector.on_condition_vector(point, (False, True))
        assert collector.mcdc_coverage() == 1.0

    def test_mcdc_incomplete_without_flip(self):
        registry, *_, point = make_registry()
        collector = CoverageCollector(registry)
        collector.on_condition_vector(point, (True, True))
        collector.on_condition_vector(point, (False, False))
        # (F,F) vs (T,T): both conditions change together -> no single
        # condition demonstrated independent.
        assert collector.mcdc_coverage() == 0.0

    def test_obligation_bookkeeping(self):
        registry, *_, point = make_registry()
        collector = CoverageCollector(registry)
        total = len(collector.all_condition_obligations())
        assert total == 8  # 2 atoms x 2 polarities x {value, mcdc}
        collector.on_condition_vector(point, (True, True))
        remaining = collector.unsatisfied_condition_obligations()
        assert len(remaining) < total

    def test_fork_is_independent(self):
        registry, switch, *_ = make_registry()
        collector = CoverageCollector(registry)
        collector.on_branch(switch.branches[0])
        clone = collector.fork()
        clone.on_branch(switch.branches[1])
        assert collector.decision_coverage() == 0.25
        assert clone.decision_coverage() == 0.5

    def test_summary(self):
        registry, switch, *_ = make_registry()
        collector = CoverageCollector(registry)
        collector.on_branch(switch.branches[0])
        summary = collector.summary()
        assert summary.decision == 0.25
        assert summary.covered_branches == 1
        assert summary.total_branches == 4
        assert set(summary.as_dict()) == {"decision", "condition", "mcdc"}
