"""Unit tests for the metrics registry: schema stability, merge, delta."""

import itertools
import json

import pytest

from repro.errors import MetricsError
from repro.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    delta_snapshots,
    empty_snapshot,
    fold_snapshots,
    merge_snapshots,
)


def make_registry():
    r = MetricsRegistry()
    r.counter("a.calls").inc(3)
    r.gauge("a.seconds", mode="sum").record(1.5)
    r.gauge("a.peak", mode="max").record(7.0)
    h = r.histogram("a.sizes", (1, 4, 16))
    for v in (0, 2, 5, 100):
        h.observe(v)
    return r


class TestInstruments:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        c = r.counter("x")
        c.inc()
        c.inc(4)
        assert r.snapshot()["counters"]["x"] == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("x").inc(-1)

    def test_counter_is_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")

    @pytest.mark.parametrize(
        "mode,values,expected",
        [("sum", (1.0, 2.5), 3.5), ("max", (1.0, 9.0, 3.0), 9.0),
         ("min", (4.0, 2.0, 8.0), 2.0)],
    )
    def test_gauge_modes(self, mode, values, expected):
        r = MetricsRegistry()
        g = r.gauge("g", mode=mode)
        for v in values:
            g.record(v)
        assert r.snapshot()["gauges"]["g"]["value"] == pytest.approx(expected)

    def test_gauge_unobserved_is_none(self):
        r = MetricsRegistry()
        r.gauge("g", mode="min")
        assert r.snapshot()["gauges"]["g"]["value"] is None

    def test_gauge_mode_conflict_rejected(self):
        r = MetricsRegistry()
        r.gauge("g", mode="sum")
        with pytest.raises(MetricsError):
            r.gauge("g", mode="max")

    def test_gauge_bad_mode_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().gauge("g", mode="last")

    def test_histogram_bucketing(self):
        r = MetricsRegistry()
        h = r.histogram("h", (1, 4, 16))
        for v in (0, 1, 2, 4, 5, 16, 17, 1000):
            h.observe(v)
        snap = r.snapshot()["histograms"]["h"]
        # <=1: {0,1}; <=4: {2,4}; <=16: {5,16}; overflow: {17,1000}.
        assert snap["counts"] == [2, 2, 2, 2]
        assert snap["count"] == 8
        assert snap["bounds"] == [1.0, 4.0, 16.0]
        assert snap["sum"] == pytest.approx(1045.0)

    def test_histogram_bounds_must_increase(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("h", (1, 1))
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("h", ())

    def test_histogram_bounds_conflict_rejected(self):
        r = MetricsRegistry()
        r.histogram("h", (1, 2))
        with pytest.raises(MetricsError):
            r.histogram("h", (1, 3))

    def test_kind_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(MetricsError):
            r.gauge("x")
        with pytest.raises(MetricsError):
            r.histogram("x", (1,))

    def test_empty_name_rejected(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("")


class TestSnapshot:
    def test_schema_tag_and_json_round_trip(self):
        snap = make_registry().snapshot()
        assert snap["schema"] == METRICS_SCHEMA
        assert json.loads(json.dumps(snap)) == snap

    def test_schema_stable_zeros_included(self):
        """A declared-but-untouched instrument appears with zeros."""
        r = MetricsRegistry()
        r.counter("quiet")
        r.histogram("empty", (1, 2))
        snap = r.snapshot()
        assert snap["counters"] == {"quiet": 0}
        assert snap["histograms"]["empty"]["counts"] == [0, 0, 0]
        assert snap["histograms"]["empty"]["count"] == 0

    def test_names_sorted(self):
        r = MetricsRegistry()
        r.counter("z")
        r.counter("a")
        assert list(r.snapshot()["counters"]) == ["a", "z"]

    def test_snapshot_is_detached(self):
        """Mutating the registry after snapshot leaves the snapshot alone."""
        r = make_registry()
        snap = r.snapshot()
        r.counter("a.calls").inc(100)
        r.histogram("a.sizes", (1, 4, 16)).observe(2)
        assert snap["counters"]["a.calls"] == 3
        assert snap["histograms"]["a.sizes"]["count"] == 4


class TestMerge:
    def test_merge_is_commutative(self):
        a = make_registry().snapshot()
        b = MetricsRegistry()
        b.counter("a.calls").inc(10)
        b.counter("b.only").inc(1)
        b.gauge("a.peak", mode="max").record(2.0)
        b.histogram("a.sizes", (1, 4, 16)).observe(3)
        b = b.snapshot()
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    def test_merge_sums_and_combines(self):
        a = make_registry().snapshot()
        merged = merge_snapshots(a, a)
        assert merged["counters"]["a.calls"] == 6
        assert merged["gauges"]["a.seconds"]["value"] == pytest.approx(3.0)
        assert merged["gauges"]["a.peak"]["value"] == pytest.approx(7.0)
        assert merged["histograms"]["a.sizes"]["count"] == 8

    def test_merge_with_empty_is_identity(self):
        a = make_registry().snapshot()
        assert merge_snapshots(a, empty_snapshot()) == a
        assert merge_snapshots(empty_snapshot(), a) == a

    def test_merge_none_gauges(self):
        a = MetricsRegistry()
        a.gauge("g", mode="min")
        b = MetricsRegistry()
        b.gauge("g", mode="min").record(3.0)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["gauges"]["g"]["value"] == pytest.approx(3.0)

    def test_merge_rejects_mode_conflict(self):
        a = MetricsRegistry()
        a.gauge("g", mode="sum")
        b = MetricsRegistry()
        b.gauge("g", mode="max")
        with pytest.raises(MetricsError):
            merge_snapshots(a.snapshot(), b.snapshot())

    def test_merge_rejects_bounds_conflict(self):
        a = MetricsRegistry()
        a.histogram("h", (1, 2))
        b = MetricsRegistry()
        b.histogram("h", (1, 3))
        with pytest.raises(MetricsError):
            merge_snapshots(a.snapshot(), b.snapshot())

    def test_merge_rejects_foreign_schema(self):
        with pytest.raises(MetricsError):
            merge_snapshots(empty_snapshot(), {"schema": "bogus/1"})

    def test_fold_is_order_independent(self):
        """fold_snapshots gives bit-identical results for any arrival order."""
        parts = []
        for i in range(4):
            r = MetricsRegistry()
            r.counter("calls").inc(i + 1)
            r.gauge("seconds", mode="sum").record(0.1 * (i + 1))
            parts.append(((f"m{i}", "STCG", i), r.snapshot()))
        folded = [
            fold_snapshots(list(perm))
            for perm in itertools.permutations(parts)
        ]
        assert all(f == folded[0] for f in folded)
        assert folded[0]["counters"]["calls"] == 10


class TestDelta:
    def test_counter_and_histogram_delta(self):
        r = MetricsRegistry()
        c = r.counter("x")
        h = r.histogram("h", (1, 2))
        c.inc(2)
        h.observe(1)
        old = r.snapshot()
        c.inc(5)
        h.observe(2)
        h.observe(99)
        d = delta_snapshots(r.snapshot(), old)
        assert d["counters"]["x"] == 5
        assert d["histograms"]["h"]["counts"] == [0, 1, 1]
        assert d["histograms"]["h"]["count"] == 2

    def test_sum_gauge_subtracts_peak_passes_through(self):
        r = MetricsRegistry()
        s = r.gauge("s", mode="sum")
        p = r.gauge("p", mode="max")
        s.record(1.0)
        p.record(5.0)
        old = r.snapshot()
        s.record(2.0)
        p.record(3.0)
        d = delta_snapshots(r.snapshot(), old)
        assert d["gauges"]["s"]["value"] == pytest.approx(2.0)
        assert d["gauges"]["p"]["value"] == pytest.approx(5.0)

    def test_delta_then_merge_round_trips(self):
        """old + delta(new, old) == new for counters/histograms/sum gauges."""
        r = MetricsRegistry()
        r.counter("x").inc(2)
        r.gauge("s", mode="sum").record(1.5)
        r.histogram("h", (1,)).observe(0)
        old = r.snapshot()
        r.counter("x").inc(3)
        r.gauge("s", mode="sum").record(0.5)
        r.histogram("h", (1,)).observe(9)
        new = r.snapshot()
        rebuilt = merge_snapshots(old, delta_snapshots(new, old))
        assert rebuilt["counters"] == new["counters"]
        assert rebuilt["histograms"] == new["histograms"]
        assert rebuilt["gauges"]["s"]["value"] == pytest.approx(
            new["gauges"]["s"]["value"]
        )
