"""Fuzz/Hybrid cells through the matrix executor: dispatch + determinism."""

import pytest

from repro.core.config import FuzzConfig
from repro.exec import ALL_TOOLS, TOOLS, execute_matrix
from repro.models.registry import BenchmarkModel
from repro.telemetry.events import EventLog
from tests.conftest import build_counter_model

TINY = BenchmarkModel("Tiny", "counter fixture", build_counter_model, 0, 0)

#: Count-based fuzz budget: small enough to finish well inside the wall
#: budget, so the campaigns are deterministic end to end.
OVERRIDES = {"fuzz": FuzzConfig(executions=120)}

#: Manifest fields that are inherently wall-clock (present in every run;
#: everything else must be bit-identical across worker counts).
WALL_FIELDS = ("wall_s", "cell_seconds", "phase_seconds")


def _matrix(workers):
    events = EventLog()
    result = execute_matrix(
        [TINY], ("Fuzz", "Hybrid"), budget_s=30.0, repetitions=2, seed=3,
        workers=workers, events=events, stcg_overrides=OVERRIDES,
    )
    assert not result.failures, result.failures
    return result


def _comparable(manifest):
    stripped = {
        key: value for key, value in manifest.items()
        if key not in WALL_FIELDS
    }
    # The worker count is the experiment knob under test, not an output.
    stripped["config"] = {
        k: v for k, v in (manifest.get("config") or {}).items()
        if k != "workers"
    }
    return stripped


class TestDispatch:
    def test_all_tools_extends_the_paper_matrix(self):
        assert TOOLS == ("SLDV", "SimCoTest", "STCG")
        assert ALL_TOOLS == TOOLS + ("Fuzz", "Hybrid")

    @pytest.mark.parametrize("tool", ["Fuzz", "Hybrid"])
    def test_cells_run_and_report_fuzz_stats(self, tool):
        result = execute_matrix(
            [TINY], (tool,), budget_s=30.0, repetitions=1, seed=0,
            workers=1, stcg_overrides=OVERRIDES,
        )
        outcome = result.outcomes["Tiny"][tool]
        assert outcome.ok
        run = outcome.runs[0]
        assert run.tool == tool
        if tool == "Fuzz":
            assert run.stats["fuzz_executions"] > 0
        # A hybrid whose phase-1 STCG already covers everything skips the
        # campaign loop, but still seeds the corpus from the suite.
        assert run.stats["fuzz_corpus_size"] > 0


class TestManifestIdentity:
    def test_fuzz_manifests_bit_identical_across_worker_counts(self):
        """The acceptance pin: a fixed-seed Fuzz/Hybrid matrix produces
        the same manifest (modulo wall-clock fields) at workers=1 and
        workers=N."""
        serial = _matrix(1)
        parallel = _matrix(2)
        assert _comparable(serial.manifest) == _comparable(parallel.manifest)
        fuzz = serial.manifest["fuzz"]
        assert fuzz["cells"] == 4
        assert fuzz["executions"] > 0
        assert fuzz["corpus_size"] > 0

    def test_coverage_aggregates_identical(self):
        serial = _matrix(1)
        parallel = _matrix(2)
        for tool in ("Fuzz", "Hybrid"):
            a = serial.outcomes["Tiny"][tool]
            b = parallel.outcomes["Tiny"][tool]
            assert a.decision == b.decision
            assert a.condition == b.condition
            assert a.mcdc == b.mcdc
            assert [len(r.suite) for r in a.runs] == [
                len(r.suite) for r in b.runs
            ]
