"""Tests for the parallel matrix executor: seeds, plans, isolation."""

import time

import pytest

from repro.errors import HarnessError
from repro.exec import (
    CellFailure,
    TOOLS,
    ToolOutcome,
    derive_seed,
    execute_matrix,
    plan_matrix,
)
from repro.models import BENCHMARKS
from repro.models.registry import BenchmarkModel

from tests.conftest import (
    build_counter_model,
    build_crashy_model,
    build_sleepy_model,
)

TINY = BenchmarkModel("Tiny", "counter fixture", build_counter_model, 0, 0)
CRASHY = BenchmarkModel("Crashy", "crash injection", build_crashy_model, 0, 0)
SLEEPY = BenchmarkModel("Sleepy", "hang injection", build_sleepy_model, 0, 0)


class TestSeedDerivation:
    def test_collision_free_over_paper_matrix(self):
        # 8 models x 3 tools x 10 repetitions, the paper's full grid.
        seeds = {
            derive_seed(0, model.name, tool, rep)
            for model in BENCHMARKS
            for tool in TOOLS
            for rep in range(10)
        }
        assert len(seeds) == len(BENCHMARKS) * len(TOOLS) * 10

    def test_stable_across_calls(self):
        assert derive_seed(7, "TCP", "STCG", 3) == derive_seed(7, "TCP", "STCG", 3)

    def test_every_component_matters(self):
        base = derive_seed(0, "TCP", "STCG", 0)
        assert derive_seed(1, "TCP", "STCG", 0) != base
        assert derive_seed(0, "AFC", "STCG", 0) != base
        assert derive_seed(0, "TCP", "SLDV", 0) != base
        assert derive_seed(0, "TCP", "STCG", 1) != base

    def test_legacy_scheme_reused_seeds_across_models(self):
        # The old derivation ignored the model entirely, so every model ran
        # the same seed for a given (tool, repetition) — the new one doesn't.
        legacy = lambda tool, rep: 0 * 1000 + rep * 7 + sum(map(ord, tool)) % 97
        assert legacy("STCG", 0) == legacy("STCG", 0)  # model-independent
        assert (
            derive_seed(0, "TCP", "STCG", 0)
            != derive_seed(0, "CPUTask", "STCG", 0)
        )


class TestPlan:
    def test_plan_order_and_repetitions(self):
        cells = plan_matrix(
            [TINY, CRASHY], ("SLDV", "STCG"),
            budget_s=1.0, repetitions=2, sldv_repetitions=1, seed=0,
        )
        labels = [(c.model.name, c.tool, c.repetition) for c in cells]
        assert labels == [
            ("Tiny", "SLDV", 0),
            ("Tiny", "STCG", 0), ("Tiny", "STCG", 1),
            ("Crashy", "SLDV", 0),
            ("Crashy", "STCG", 0), ("Crashy", "STCG", 1),
        ]
        assert [c.index for c in cells] == list(range(6))

    def test_plan_is_deterministic(self):
        kwargs = dict(budget_s=1.0, repetitions=3, sldv_repetitions=1, seed=9)
        a = plan_matrix([TINY], TOOLS, **kwargs)
        b = plan_matrix([TINY], TOOLS, **kwargs)
        assert [c.seed for c in a] == [c.seed for c in b]


class TestEquivalence:
    def test_serial_and_parallel_aggregate_identically(self):
        kwargs = dict(budget_s=5.0, repetitions=2, seed=3)
        serial = execute_matrix([TINY], TOOLS, workers=1, **kwargs)
        parallel = execute_matrix([TINY], TOOLS, workers=3, **kwargs)
        assert not serial.failures and not parallel.failures
        for tool in TOOLS:
            a = serial.outcomes["Tiny"][tool]
            b = parallel.outcomes["Tiny"][tool]
            assert a.decision == b.decision  # bit-identical, not approx
            assert a.condition == b.condition
            assert a.mcdc == b.mcdc
            assert len(a.runs) == len(b.runs)
            assert [len(r.suite) for r in a.runs] == [len(r.suite) for r in b.runs]


class TestFailureIsolation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_crashing_cell_is_recorded_not_fatal(self, workers):
        result = execute_matrix(
            [TINY, CRASHY], ("STCG",),
            budget_s=2.0, repetitions=1, workers=workers,
        )
        assert result.cells_total == 2
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert isinstance(failure, CellFailure)
        assert failure.model == "Crashy"
        assert failure.kind == "crash"
        assert "injected model-build crash" in failure.message
        # The healthy cell still aggregated.
        assert result.outcomes["Tiny"]["STCG"].ok
        assert not result.outcomes["Crashy"]["STCG"].ok

    def test_timeout_degrades_to_recorded_failure(self):
        started = time.monotonic()
        result = execute_matrix(
            [SLEEPY, TINY], ("STCG",),
            budget_s=2.0, repetitions=1, workers=1, cell_timeout=0.5,
        )
        assert time.monotonic() - started < 4.5  # did not sit out the sleep
        kinds = {f.model: f.kind for f in result.failures}
        assert kinds == {"Sleepy": "timeout"}
        assert result.outcomes["Tiny"]["STCG"].ok

    def test_progress_reports_failures(self):
        messages = []
        execute_matrix(
            [CRASHY], ("STCG",),
            budget_s=1.0, repetitions=1, progress=messages.append,
        )
        assert len(messages) == 1
        assert "FAILED" in messages[0] and "crash" in messages[0]

    def test_invalid_workers_rejected(self):
        with pytest.raises(HarnessError):
            execute_matrix([TINY], ("STCG",), budget_s=1.0, workers=0)
        with pytest.raises(HarnessError):
            execute_matrix([TINY], ("STCG",), budget_s=1.0, cell_timeout=-1.0)


class TestToolOutcome:
    def test_empty_outcome_renders_as_zero(self):
        outcome = ToolOutcome("STCG", "M")
        assert outcome.decision == 0.0
        assert outcome.condition == 0.0
        assert outcome.mcdc == 0.0
        assert not outcome.ok
        with pytest.raises(HarnessError):
            outcome.representative
