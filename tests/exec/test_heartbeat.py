"""Tests for worker heartbeats, the stall watchdog, and observation purity."""

import json
import os

import pytest

from repro.core.config import StcgConfig
from repro.core.stcg import StcgGenerator
from repro.errors import ReproError
from repro.exec import (
    HEARTBEAT_SCHEMA,
    StallWatchdog,
    execute_matrix,
    heartbeat_dir_for,
    read_heartbeats,
)
from repro.exec.heartbeat import HeartbeatConfig, HeartbeatWriter, peak_rss_kb
from repro.models.registry import BenchmarkModel
from repro.obs.probe import PROBE, ProgressProbe
from repro.telemetry.events import EventLog, read_events

from tests.conftest import build_counter_model

TINY = BenchmarkModel("Tiny", "counter fixture", build_counter_model, 0, 0)


class TestProgressProbe:
    def test_inactive_probe_samples_none(self):
        probe = ProgressProbe()
        assert probe.sample() is None

    def test_activate_note_sample_deactivate(self):
        probe = ProgressProbe()
        probe.activate(cell=3, model="M", tool="STCG", repetition=1)
        probe.note(phase="solve_scan", tree_nodes=7, solver_calls=4,
                   coverage_fn=lambda: 0.5)
        sample = probe.sample()
        assert sample["cell"] == 3
        assert sample["model"] == "M"
        assert sample["phase"] == "solve_scan"
        assert sample["tree_nodes"] == 7
        assert sample["solver_calls"] == 4
        assert sample["coverage"] == 0.5
        probe.deactivate()
        assert probe.sample() is None

    def test_broken_coverage_fn_degrades_to_none(self):
        probe = ProgressProbe()
        probe.activate(cell=0)

        def boom():
            raise RuntimeError("torn read")

        probe.note(coverage_fn=boom)
        assert probe.sample()["coverage"] is None


class TestHeartbeatWriter:
    def test_beats_carry_schema_and_rss(self, tmp_path):
        writer = HeartbeatWriter(
            HeartbeatConfig(directory=str(tmp_path), interval_s=60.0)
        )
        try:
            PROBE.activate(cell=0, model="M", tool="STCG", repetition=0)
            beat = writer.beat_now()
        finally:
            PROBE.deactivate()
            writer.stop()
        assert beat["schema"] == HEARTBEAT_SCHEMA
        assert beat["pid"] == os.getpid()
        assert isinstance(beat["rss_kb"], int) and beat["rss_kb"] > 0
        beats = read_heartbeats(str(tmp_path))
        assert beats == [beat]

    def test_beat_between_cells_is_noop(self, tmp_path):
        writer = HeartbeatWriter(
            HeartbeatConfig(directory=str(tmp_path), interval_s=60.0)
        )
        try:
            assert writer.beat_now() is None
        finally:
            writer.stop()
        assert read_heartbeats(str(tmp_path)) == []

    def test_malformed_sidecar_line_raises(self, tmp_path):
        (tmp_path / "hb-1.jsonl").write_text('{"cell": 0}\nnot json\n')
        with pytest.raises(ReproError, match="malformed heartbeat"):
            read_heartbeats(str(tmp_path))

    def test_peak_rss_is_positive(self):
        assert peak_rss_kb() > 0


class TestMatrixHeartbeats:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_every_cell_leaves_beats(self, tmp_path, workers):
        path = str(tmp_path / "run.jsonl")
        with EventLog(path) as log:
            result = execute_matrix(
                [TINY], ("STCG",), budget_s=2.0, repetitions=2,
                workers=workers, events=log, heartbeat_s=0.05,
            )
        assert not result.failures
        beats = read_heartbeats(heartbeat_dir_for(path))
        # Immediate entry + final "done" beat per cell, at minimum.
        seen_cells = {b["cell"] for b in beats}
        assert seen_cells == {0, 1}
        for beat in beats:
            assert beat["schema"] == HEARTBEAT_SCHEMA
            assert beat["model"] == "Tiny" and beat["tool"] == "STCG"
            assert beat["rss_kb"] > 0
        # Each cell's last beat is the terminal one.
        for cell in seen_cells:
            assert [b for b in beats if b["cell"] == cell][-1]["phase"] == "done"

    def test_explicit_heartbeat_dir(self, tmp_path):
        hb_dir = str(tmp_path / "beats")
        execute_matrix(
            [TINY], ("STCG",), budget_s=2.0, repetitions=1, workers=1,
            heartbeat_s=0.05, heartbeat_dir=hb_dir,
        )
        assert read_heartbeats(hb_dir)

    def test_invalid_heartbeat_args_rejected(self):
        from repro.errors import HarnessError

        with pytest.raises(HarnessError):
            execute_matrix([TINY], ("STCG",), budget_s=1.0, heartbeat_s=0.0)
        with pytest.raises(HarnessError):
            execute_matrix(
                [TINY], ("STCG",), budget_s=1.0,
                heartbeat_s=1.0, stall_fraction=0.0,
            )


class TestStallWatchdog:
    def _beat(self, cell, phase="solve_scan"):
        return {
            "schema": HEARTBEAT_SCHEMA, "pid": 1, "n": 0,
            "cell": cell, "model": "M", "tool": "STCG", "repetition": 0,
            "phase": phase, "tree_nodes": 5, "solver_calls": 2,
            "coverage": 0.4, "rss_kb": 1000,
        }

    def _write(self, directory, beats, name="hb-1.jsonl"):
        path = os.path.join(str(directory), name)
        with open(path, "a") as handle:
            for beat in beats:
                handle.write(json.dumps(beat) + "\n")

    def test_quiet_cell_is_flagged_once(self, tmp_path):
        events = EventLog()
        dog = StallWatchdog(str(tmp_path), quiet_s=10.0, emit=events.emit)
        self._write(tmp_path, [self._beat(0)])
        now = 100.0
        dog._clock = lambda: now  # drive the scan clock by hand
        assert dog.scan() == 1
        assert dog.check(now + 5.0) == []  # still within the threshold
        assert dog.check(now + 11.0) == [0]
        assert dog.check(now + 50.0) == []  # flagged only once
        stalled = events.of_kind("cell_stalled")
        assert len(stalled) == 1
        assert stalled[0]["cell"] == 0
        assert stalled[0]["model"] == "M"
        assert stalled[0]["phase"] == "solve_scan"
        assert stalled[0]["last_tree_nodes"] == 5
        assert stalled[0]["quiet_s"] >= 10.0
        assert dog.stalled_cells == [0]

    def test_fresh_beat_resets_the_clock(self, tmp_path):
        events = EventLog()
        dog = StallWatchdog(str(tmp_path), quiet_s=10.0, emit=events.emit)
        self._write(tmp_path, [self._beat(0)])
        dog._clock = lambda: 100.0
        dog.scan()
        self._write(tmp_path, [self._beat(0, phase="execute")])
        dog._clock = lambda: 109.0
        dog.scan()  # new beat observed at t=109
        assert dog.check(112.0) == []  # only 3s quiet
        assert dog.check(120.0) == [0]
        assert events.of_kind("cell_stalled")[0]["phase"] == "execute"

    def test_done_cells_never_stall(self, tmp_path):
        events = EventLog()
        dog = StallWatchdog(str(tmp_path), quiet_s=10.0, emit=events.emit)
        self._write(tmp_path, [self._beat(0)])
        dog._clock = lambda: 100.0
        dog.scan()
        dog.note_done(0)
        assert dog.check(1000.0) == []
        assert events.of_kind("cell_stalled") == []

    def test_beatless_cells_are_queued_not_stalled(self, tmp_path):
        events = EventLog()
        dog = StallWatchdog(str(tmp_path), quiet_s=10.0, emit=events.emit)
        dog.scan()  # empty directory: nothing to observe
        assert dog.check(1e9) == []

    def test_torn_final_line_waits_for_the_next_scan(self, tmp_path):
        events = EventLog()
        dog = StallWatchdog(str(tmp_path), quiet_s=10.0, emit=events.emit)
        line = json.dumps(self._beat(0)) + "\n"
        path = os.path.join(str(tmp_path), "hb-1.jsonl")
        with open(path, "w") as handle:
            handle.write(line[: len(line) // 2])
        dog._clock = lambda: 100.0
        assert dog.scan() == 0
        with open(path, "a") as handle:
            handle.write(line[len(line) // 2:])
        assert dog.scan() == 1

    def test_invalid_quiet_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            StallWatchdog(str(tmp_path), quiet_s=0.0, emit=lambda *a, **k: None)

    def test_matrix_emits_cell_stalled_for_a_hung_cell(self, tmp_path):
        """End-to-end: a sleeping cell trips the watchdog before its timeout."""
        from tests.conftest import build_sleepy_model

        sleepy = BenchmarkModel("Sleepy", "hang injection",
                                build_sleepy_model, 0, 0)
        path = str(tmp_path / "run.jsonl")
        with EventLog(path) as log:
            execute_matrix(
                [sleepy], ("STCG",), budget_s=1.0, repetitions=1, workers=1,
                cell_timeout=2.0, events=log,
                heartbeat_s=0.05, stall_fraction=0.2,
            )
        stalled = [e for e in read_events(path) if e["event"] == "cell_stalled"]
        assert stalled and stalled[0]["model"] == "Sleepy"


def _suite_content(result):
    """The deterministic part of a suite: inputs, origins, new branches.

    Case timestamps are wall-clock and jitter between runs even at a
    fixed seed, so equivalence pins everything *but* them.
    """
    return [
        (case.inputs, case.origin, case.new_branch_ids)
        for case in result.suite
    ]


class TestObservationDoesNotPerturb:
    """Fixed-seed suites must be bit-identical with observability on or off."""

    def _run(self, **overrides):
        compiled = build_counter_model()
        config = StcgConfig(budget_s=5.0, seed=7, **overrides)
        # A frozen clock removes timestamp jitter entirely: the run ends
        # on full coverage, and the suite text must then be bit-identical.
        result = StcgGenerator(compiled, config, clock=lambda: 0.0).run()
        return result.suite.to_text(), dict(result.stats)

    def test_metrics_flag_does_not_change_the_suite(self):
        on_suite, on_stats = self._run(metrics=True, trace=True)
        off_suite, off_stats = self._run(metrics=False, trace=True)
        assert on_suite == off_suite
        assert on_stats == off_stats

    def test_heartbeats_do_not_change_the_suite(self, tmp_path):
        baseline = execute_matrix(
            [TINY], ("STCG",), budget_s=5.0, repetitions=1, seed=7, workers=1,
        )
        observed = execute_matrix(
            [TINY], ("STCG",), budget_s=5.0, repetitions=1, seed=7, workers=1,
            heartbeat_s=0.05, heartbeat_dir=str(tmp_path / "hb"),
        )
        a = baseline.outcomes["Tiny"]["STCG"].runs[0]
        b = observed.outcomes["Tiny"]["STCG"].runs[0]
        assert _suite_content(a) == _suite_content(b)
        assert a.stats == b.stats


class TestWorkerMergeEquivalence:
    """workers=1 and workers=N fold to identical metric totals."""

    def _manifest(self, workers):
        log = EventLog()
        result = execute_matrix(
            [TINY], ("STCG", "SimCoTest"), budget_s=2.0, repetitions=2,
            seed=3, workers=workers, events=log, trace=True,
        )
        assert not result.failures
        return result.manifest

    def test_workers_1_and_4_metric_totals_identical(self):
        serial = self._manifest(1)
        parallel = self._manifest(4)
        assert serial["metrics"], "traced run must fold metrics"
        # Counters and histogram bucket counts are deterministic; gauges
        # carry wall-clock timing and are excluded from the pin.
        assert serial["metrics"]["counters"] == parallel["metrics"]["counters"]
        assert (
            serial["metrics"]["histograms"]
            == parallel["metrics"]["histograms"]
        )
        assert serial["stat_totals"] == parallel["stat_totals"]
        assert serial["coverage"] == parallel["coverage"]
