"""Store integrity: every corruption mode degrades to a cold start.

The warm-start store must never take a generation run down.  These
tests feed the loader truncated files, garbage, schema bumps, and
digest mismatches, and assert the run (a) completes with cold-run
results and (b) counts ``store_rejected`` so the degradation is
observable.
"""

import json
import os

import pytest

from repro.cache import SolveCache
from repro.core.config import StcgConfig, StoreConfig
from repro.core.stcg import StcgGenerator
from repro.store import STORE_SCHEMA, WarmStore, config_digest, model_digest
from tests.conftest import build_counter_model
from repro.expr.types import INT
from repro.model import ModelBuilder


def _config(tmp_path, **kwargs):
    return StcgConfig(
        budget_s=1.0,
        seed=3,
        store=StoreConfig(path=str(tmp_path)),
        **kwargs,
    )


def _run(tmp_path, build=build_counter_model, **kwargs):
    gen = StcgGenerator(build(), _config(tmp_path, **kwargs))
    result = gen.run()
    return gen, result


def _store_files(tmp_path):
    return sorted(
        p for p in os.listdir(tmp_path) if p.endswith(".json")
    )


class TestLifecycle:
    def test_cold_miss_then_write(self, tmp_path):
        gen, _ = _run(tmp_path)
        assert gen.stats["store_misses"] == 1
        assert gen.stats["store_hits"] == 0
        assert gen.stats["store_writes"] == 1
        assert len(_store_files(tmp_path)) == 1

    def test_second_run_hits_and_is_identical(self, tmp_path):
        _, cold = _run(tmp_path)
        gen, warm = _run(tmp_path)
        assert gen.stats["store_hits"] == 1
        assert gen.stats["restored_verdicts"] > 0
        assert [c.inputs for c in warm.suite] == [
            c.inputs for c in cold.suite
        ]

    def test_unchanged_warm_rerun_skips_the_write(self, tmp_path):
        _run(tmp_path)
        gen, _ = _run(tmp_path)
        # Nothing was learned beyond the restored folds, so saving
        # again would only rewrite the same document.
        assert gen.stats["store_hits"] == 1
        assert gen.stats["store_writes"] == 0

    def test_read_flag_off_never_touches_the_store(self, tmp_path):
        _run(tmp_path)
        config = StcgConfig(
            budget_s=1.0, seed=3,
            store=StoreConfig(path=str(tmp_path), read=False),
        )
        gen = StcgGenerator(build_counter_model(), config)
        gen.run()
        assert gen.stats["store_reads"] == 0
        assert gen.stats["store_hits"] == 0

    def test_write_flag_off_never_writes(self, tmp_path):
        config = StcgConfig(
            budget_s=1.0, seed=3,
            store=StoreConfig(path=str(tmp_path), write=False),
        )
        gen = StcgGenerator(build_counter_model(), config)
        gen.run()
        assert gen.stats["store_writes"] == 0
        assert _store_files(tmp_path) == []

    def test_seed_scopes_to_distinct_documents(self, tmp_path):
        _run(tmp_path)
        gen = StcgGenerator(
            build_counter_model(),
            StcgConfig(budget_s=1.0, seed=4,
                       store=StoreConfig(path=str(tmp_path))),
        )
        gen.run()
        assert gen.stats["store_misses"] == 1  # other seed's doc ignored
        assert len(_store_files(tmp_path)) == 2


def _corrupt(tmp_path, mutate):
    """Apply ``mutate(document) -> text`` to the single stored file."""
    (name,) = _store_files(tmp_path)
    path = os.path.join(str(tmp_path), name)
    with open(path) as handle:
        document = json.load(handle)
    with open(path, "w") as handle:
        handle.write(mutate(document))


def _expect_cold_fallback(tmp_path, cold_suite):
    gen, result = _run(tmp_path)
    assert gen.stats["store_hits"] == 0
    assert gen.stats["store_rejected"] == 1
    assert gen.stats["restored_verdicts"] == 0
    # Degraded run is exactly the cold run.
    assert [c.inputs for c in result.suite] == cold_suite
    return gen


class TestCorruption:
    def test_truncated_file_degrades_to_cold(self, tmp_path):
        _, cold = _run(tmp_path)
        cold_suite = [c.inputs for c in cold.suite]
        _corrupt(tmp_path, lambda doc: json.dumps(doc)[: 200])
        _expect_cold_fallback(tmp_path, cold_suite)

    def test_garbage_file_degrades_to_cold(self, tmp_path):
        _, cold = _run(tmp_path)
        cold_suite = [c.inputs for c in cold.suite]
        _corrupt(tmp_path, lambda doc: "\x00not json at all")
        _expect_cold_fallback(tmp_path, cold_suite)

    def test_schema_bump_retires_the_document(self, tmp_path):
        _, cold = _run(tmp_path)
        cold_suite = [c.inputs for c in cold.suite]

        def bump(doc):
            doc["schema"] = "repro.store/0"
            return json.dumps(doc)

        _corrupt(tmp_path, bump)
        _expect_cold_fallback(tmp_path, cold_suite)

    def test_model_digest_mismatch_rejected(self, tmp_path):
        _, cold = _run(tmp_path)
        cold_suite = [c.inputs for c in cold.suite]

        def tamper(doc):
            doc["model_digest"] = "0" * 64
            return json.dumps(doc)

        _corrupt(tmp_path, tamper)
        _expect_cold_fallback(tmp_path, cold_suite)

    def test_config_digest_mismatch_rejected(self, tmp_path):
        _, cold = _run(tmp_path)
        cold_suite = [c.inputs for c in cold.suite]

        def tamper(doc):
            doc["config_digest"] = "f" * 64
            return json.dumps(doc)

        _corrupt(tmp_path, tamper)
        _expect_cold_fallback(tmp_path, cold_suite)

    def test_malformed_folds_degrade_to_cold(self, tmp_path):
        """Valid envelope, garbage payload: decode-then-apply protects
        the cache, so the run is still exactly cold."""
        _, cold = _run(tmp_path)
        cold_suite = [c.inputs for c in cold.suite]

        def scramble(doc):
            doc["payload"]["cache"]["verdicts"] = [[999999, ["b", 1], True]]
            return json.dumps(doc)

        _corrupt(tmp_path, scramble)
        _expect_cold_fallback(tmp_path, cold_suite)

    def test_malformed_encoding_table_degrades_to_cold(self, tmp_path):
        _, cold = _run(tmp_path)
        cold_suite = [c.inputs for c in cold.suite]

        def scramble(doc):
            doc["payload"]["cache"]["encodings"]["table"] = {"bad": 1}
            return json.dumps(doc)

        _corrupt(tmp_path, scramble)
        _expect_cold_fallback(tmp_path, cold_suite)

    def test_payload_not_a_dict_rejected(self, tmp_path):
        _, cold = _run(tmp_path)
        cold_suite = [c.inputs for c in cold.suite]

        def scramble(doc):
            doc["payload"] = [1, 2, 3]
            return json.dumps(doc)

        _corrupt(tmp_path, scramble)
        _expect_cold_fallback(tmp_path, cold_suite)


def _threshold_model(threshold):
    """build_counter_model with a configurable guard constant."""
    b = ModelBuilder("Counter")
    from repro.expr.types import BOOL

    tick = b.inport("tick", BOOL)
    amount = b.inport("amount", INT, 0, 10)
    b.data_store("count", INT, 0)
    count = b.store_read("count")
    new_count = b.switch(tick, b.add(count, amount), count, name="tick_gate")
    b.store_write("count", new_count)
    high = b.compare(new_count, ">", threshold, name="is_high")
    level = b.switch(high, b.const(2), b.const(1), name="level")
    b.outport("level", level)
    b.outport("count", new_count)
    return b.compile()


class TestDigests:
    def test_model_edit_changes_the_digest(self):
        """Same structure, different guard constant — the one-step
        semantics fold must catch it."""
        assert model_digest(_threshold_model(15)) != model_digest(
            _threshold_model(16)
        )

    def test_identical_builds_share_a_digest(self):
        assert model_digest(_threshold_model(15)) == model_digest(
            _threshold_model(15)
        )

    def test_model_edit_invalidates_stored_state(self, tmp_path):
        """Warm-start against an edited model is a miss or a rejection,
        never a hit — the old folds must not leak into the new model."""
        config = StcgConfig(
            budget_s=1.0, seed=3, store=StoreConfig(path=str(tmp_path))
        )
        StcgGenerator(_threshold_model(15), config).run()
        gen = StcgGenerator(_threshold_model(16), config)
        gen.run()
        assert gen.stats["store_hits"] == 0
        assert gen.stats["restored_verdicts"] == 0

    def test_config_edit_changes_the_digest(self):
        from repro.core.config import CacheConfig

        base = StcgConfig(budget_s=1.0, seed=0)
        ablated = StcgConfig(
            budget_s=1.0, seed=0, caches=CacheConfig(verdicts=False)
        )
        assert config_digest(base) != config_digest(ablated)

    def test_budget_and_seed_do_not_change_the_digest(self):
        a = StcgConfig(budget_s=1.0, seed=0)
        b = StcgConfig(budget_s=99.0, seed=123)
        assert config_digest(a) == config_digest(b)


class TestWarmStoreUnit:
    def test_missing_file_is_a_miss(self, tmp_path):
        store = WarmStore(
            StoreConfig(path=str(tmp_path)),
            build_counter_model(),
            StcgConfig(budget_s=1.0),
            scope="unit",
        )
        payload, status = store.load()
        assert payload is None and status == "miss"

    def test_save_then_load_round_trips(self, tmp_path):
        store = WarmStore(
            StoreConfig(path=str(tmp_path)),
            build_counter_model(),
            StcgConfig(budget_s=1.0),
            scope="unit",
        )
        assert store.save({"k": [1, 2, {"v": True}]})
        payload, status = store.load()
        assert status == "hit"
        assert payload == {"k": [1, 2, {"v": True}]}

    def test_save_into_unwritable_directory_returns_false(self, tmp_path):
        blocked = os.path.join(str(tmp_path), "file-not-dir")
        with open(blocked, "w") as handle:
            handle.write("x")
        store = WarmStore(
            StoreConfig(path=os.path.join(blocked, "nested")),
            build_counter_model(),
            StcgConfig(budget_s=1.0),
            scope="unit",
        )
        assert store.save({"k": 1}) is False

    def test_no_tmp_litter_after_save(self, tmp_path):
        store = WarmStore(
            StoreConfig(path=str(tmp_path)),
            build_counter_model(),
            StcgConfig(budget_s=1.0),
            scope="unit",
        )
        store.save({"k": 1})
        assert all(".tmp." not in name for name in os.listdir(tmp_path))

    def test_scope_discriminates_keys(self, tmp_path):
        compiled = build_counter_model()
        config = StcgConfig(budget_s=1.0)
        store_config = StoreConfig(path=str(tmp_path))
        a = WarmStore(store_config, compiled, config, scope="STCG|seed=0")
        b = WarmStore(store_config, compiled, config, scope="Fuzz|seed=0")
        assert a.key != b.key
        assert a.path != b.path

    def test_schema_constant_is_versioned(self):
        assert STORE_SCHEMA.startswith("repro.store/")


class TestLRUOrderAfterRestore:
    def test_markers_restore_in_eviction_order(self):
        """A restore must reproduce the donor's LRU order: the entry the
        donor would evict next is the entry the restored cache evicts
        next."""
        donor = SolveCache("M", compiled_capacity=8)
        order = [("fp%d" % i, ("branch", i)) for i in range(4)]
        for fingerprint, key in order:
            donor.compiled_constraint(fingerprint, key, lambda: None)
        folds = donor.export_folds()

        restored = SolveCache("M", compiled_capacity=4)
        restored.restore_folds(folds, build_counter_model())
        assert [k for k, _ in restored.compiled.items()] == [
            (fp, key) for fp, key in order
        ]
        # One insert over capacity evicts the donor's oldest entry.
        restored.compiled.put(("fresh", ("branch", 99)), None)
        remaining = [k for k, _ in restored.compiled.items()]
        assert (order[0][0], order[0][1]) not in remaining
        assert (order[1][0], order[1][1]) in remaining

    def test_encodings_restore_in_eviction_order(self):
        compiled = build_counter_model()
        from repro.model.state import ModelState
        from repro.solver.encoder import OneStepEncoding

        donor = SolveCache("M", encoding_capacity=8)
        state = ModelState(compiled.initial_state())
        fingerprints = []
        for index in range(3):
            fingerprint = f"enc{index}"
            fingerprints.append(fingerprint)
            donor.encoding(
                fingerprint,
                lambda state=state: OneStepEncoding(compiled, state),
            )
        folds = donor.export_folds()
        restored = SolveCache("M", encoding_capacity=3)
        restored.restore_folds(folds, compiled)
        assert [k for k, _ in restored.encodings.items()] == fingerprints
        restored.encodings.put("fresh", None)
        assert fingerprints[0] not in restored.encodings
        assert fingerprints[1] in restored.encodings


class TestSnapshotFold:
    """CPUTask-style runs retire most solve keys after one visit, so
    contraction snapshots rarely appear organically — exercise the fold
    synthetically."""

    def _snapshot_folds(self):
        from repro.solver.interval import Interval

        donor = SolveCache("M")
        donor._restored_contraction[("fp0", ("branch", 1))] = (
            True,
            {"x": Interval(0.0, 4.0), "y": Interval(-1.0, 1.0)},
        )
        return donor.export_folds()

    def test_snapshots_round_trip(self):
        folds = self._snapshot_folds()
        assert len(folds["snapshots"]) == 1
        restored = SolveCache("M")
        counts = restored.restore_folds(folds, build_counter_model())
        assert counts["snapshots"] == 1
        (feasible, snapshot) = restored._restored_contraction[
            ("fp0", ("branch", 1))
        ]
        assert feasible is True
        assert snapshot["x"].lo == 0.0 and snapshot["x"].hi == 4.0

    def test_unconsumed_snapshots_carry_forward(self):
        """export → restore → export again must not drop a snapshot the
        intermediate run never consumed."""
        folds = self._snapshot_folds()
        middle = SolveCache("M")
        middle.restore_folds(folds, build_counter_model())
        again = middle.export_folds()
        assert len(again["snapshots"]) == 1

    def test_verdicts_not_restored_when_disabled(self):
        donor = SolveCache("M")
        donor.mark_dead("fp", ("branch", 1), counts_failure=True)
        folds = donor.export_folds()
        restored = SolveCache("M", verdicts=False)
        counts = restored.restore_folds(folds, build_counter_model())
        assert counts["verdicts"] == 0
        assert restored.dead_verdict("fp", ("branch", 1)) is None
