"""Exactness of the warm-start store codecs (repro.store.codec)."""

import math

import pytest

from repro.coverage.collector import ConditionObligation
from repro.expr.ast import Binary, Const, Ite, Select, Store, Unary, Var
from repro.expr.types import ArrayType, BOOL, INT, REAL
from repro.model.state import ModelState
from repro.solver.encoder import OneStepEncoding
from repro.store.codec import (
    CodecError,
    ExprTable,
    decode_encoding,
    decode_expr,
    decode_expr_table,
    decode_target_key,
    decode_type,
    decode_value,
    encode_encoding,
    encode_expr,
    encode_target_key,
    encode_type,
    encode_value,
)
from tests.conftest import build_counter_model, build_queue_model


class TestTypeCodec:
    @pytest.mark.parametrize(
        "ty", [BOOL, INT, REAL, ArrayType(INT, 3), ArrayType(BOOL, 7)]
    )
    def test_round_trip(self, ty):
        assert decode_type(encode_type(ty)) == ty

    def test_unknown_scalar_rejected(self):
        with pytest.raises(CodecError):
            decode_type("complex")

    def test_malformed_payload_rejected(self):
        with pytest.raises(CodecError):
            decode_type(["array", "int"])


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            3.5,
            -0.0,
            math.inf,
            "s",
            (1, 2, 3),
            ((True, 0.5), (), "x"),
        ],
    )
    def test_round_trip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        # bool vs int must survive: the generator folds on `is False`.
        assert type(decoded) is type(value)

    def test_tuples_stay_tuples(self):
        decoded = decode_value(encode_value((1, (2, 3))))
        assert isinstance(decoded, tuple)
        assert isinstance(decoded[1], tuple)

    def test_unencodable_value_rejected(self):
        with pytest.raises(CodecError):
            encode_value(object())

    def test_malformed_dict_rejected(self):
        with pytest.raises(CodecError):
            decode_value({"not_t": []})


def _sample_exprs():
    x = Var("x", INT, 0, 10)
    arr = Var("a", ArrayType(INT, 3), None, None)
    return [
        Const(True, BOOL),
        Const(2.5, REAL),
        Var("b", BOOL, None, None),
        Unary("not", Var("b", BOOL, None, None), BOOL),
        Binary("add", x, Const(1, INT), INT),
        Ite(Var("b", BOOL, None, None), x, Const(0, INT), INT),
        Select(arr, Const(1, INT), INT),
        Store(arr, Const(1, INT), x, ArrayType(INT, 3)),
    ]


class TestExprCodec:
    @pytest.mark.parametrize("expr", _sample_exprs())
    def test_round_trip(self, expr):
        assert decode_expr(encode_expr(expr)) == expr

    def test_unknown_tag_rejected(self):
        with pytest.raises(CodecError):
            decode_expr(["zzz", 1])

    def test_malformed_node_rejected(self):
        with pytest.raises(CodecError):
            decode_expr(["b", "add"])  # missing operands


class TestExprTable:
    def test_round_trip_preserves_structure(self):
        table = ExprTable()
        indices = [table.add(expr) for expr in _sample_exprs()]
        decoded = decode_expr_table(table.nodes)
        for expr, index in zip(_sample_exprs(), indices):
            assert decoded[index] == expr

    def test_shared_subtree_interned_once(self):
        x = Var("x", INT, 0, 10)
        left = Binary("add", x, Const(1, INT), INT)
        right = Binary("sub", x, Const(1, INT), INT)
        table = ExprTable()
        table.add(left)
        before = len(table.nodes)
        table.add(right)
        # `x` is shared by identity, so only the new nodes land.
        decoded = decode_expr_table(table.nodes)
        assert decoded[before + 1] == right or right in decoded
        assert table.nodes.count(["v", "x", "int", 0, 10]) == 1

    def test_decoded_references_are_shared_objects(self):
        x = Var("x", INT, 0, 10)
        table = ExprTable()
        table.add(Binary("add", x, x, INT))
        decoded = decode_expr_table(table.nodes)
        top = decoded[-1]
        assert top.left is top.right

    def test_out_of_range_reference_rejected(self):
        with pytest.raises(CodecError):
            decode_expr_table([["u", "not", 5, "bool"]])

    def test_forward_reference_rejected(self):
        # children-before-parents is part of the format
        with pytest.raises(CodecError):
            decode_expr_table([["u", "not", 1, "bool"], ["c", True, "bool"]])

    def test_non_list_table_rejected(self):
        with pytest.raises(CodecError):
            decode_expr_table({"0": ["c", True, "bool"]})


class TestTargetKeyCodec:
    def test_branch_round_trip(self):
        assert decode_target_key(encode_target_key(("branch", 9))) == (
            "branch", 9,
        )

    def test_obligation_round_trip(self):
        obligation = ConditionObligation(3, 1, True, False)
        kind, decoded = decode_target_key(
            encode_target_key(("obligation", obligation))
        )
        assert kind == "obligation"
        assert decoded == obligation

    def test_malformed_key_rejected(self):
        with pytest.raises(CodecError):
            decode_target_key(["o", 1])


class TestEncodingCodec:
    @pytest.mark.parametrize(
        "build", [build_counter_model, build_queue_model]
    )
    def test_round_trip_matches_cold_build(self, build):
        compiled = build()
        encoding = OneStepEncoding(
            compiled, ModelState(compiled.initial_state())
        )
        table = ExprTable()
        payload = encode_encoding(encoding, table)
        exprs = decode_expr_table(table.nodes)
        decoded = decode_encoding(payload, compiled, exprs)
        assert decoded.state.values == encoding.state.values
        assert decoded._outcome_conditions == encoding._outcome_conditions
        assert decoded._condition_atoms == encoding._condition_atoms
        assert decoded.variables == encoding.variables

    def test_malformed_payload_rejected(self):
        compiled = build_counter_model()
        with pytest.raises(CodecError):
            decode_encoding(["not", "a", "dict"], compiled, [])
        with pytest.raises(CodecError):
            decode_encoding({"state": {}}, compiled, [])  # missing folds

    def test_out_of_range_node_reference_rejected(self):
        compiled = build_counter_model()
        encoding = OneStepEncoding(
            compiled, ModelState(compiled.initial_state())
        )
        table = ExprTable()
        payload = encode_encoding(encoding, table)
        with pytest.raises(CodecError):
            decode_encoding(payload, compiled, [])  # empty table
