"""Warm-start correctness: bit-identity, fuzz seeding, API wiring.

The core contract of :mod:`repro.store`: a warm-started STCG run is
**bit-identical** to a cold run at the same seed and budget.  The live
restore only replays draw-free derived state (UNSAT verdicts,
first-visit markers, contraction snapshots, one-step encodings), none
of which touches the RNG stream, and clock reads happen at the same
logical points warm and cold — so under an injected deterministic clock
the pin holds on every registry model, including the budget-bound ones.
"""

import json

import pytest

from repro.core.config import FuzzConfig, StcgConfig, StoreConfig
from repro.core.stcg import StcgGenerator
from repro.errors import ReproError
from repro.fuzz.engine import FuzzGenerator, HybridGenerator
from repro.models.registry import benchmark_names, get_benchmark


def counting_clock(step=0.001):
    """A deterministic clock: every read advances one fixed tick."""
    now = [0.0]

    def clock():
        now[0] += step
        return now[0]

    return clock


def _suite_inputs(result):
    return [case.inputs for case in result.suite]


@pytest.mark.parametrize("name", benchmark_names())
def test_warm_equals_cold_on_every_registry_model(name, tmp_path):
    """The 8-model bit-identity pin, budget-bound models included.

    The solver's per-call wall-clock cutoff is raised out of the way:
    it is the one remaining real-time source, and on a loaded machine
    it could time out a solve in one run but not the other.
    """
    from repro.solver.engine import SolverConfig

    config = StcgConfig(
        budget_s=0.6,
        seed=11,
        store=StoreConfig(path=str(tmp_path)),
        solver=SolverConfig(
            max_samples=48, avm_evaluations=700, time_budget_s=60.0
        ),
        # The lite backoff engine clamps its own wall budget to 30ms
        # regardless of the override above — keep it out of the pin.
        failure_backoff_after=10**9,
    )
    cold = StcgGenerator(
        get_benchmark(name).build(), config, clock=counting_clock()
    ).run()
    warm_gen = StcgGenerator(
        get_benchmark(name).build(), config, clock=counting_clock()
    )
    warm = warm_gen.run()
    assert warm_gen.stats["store_hits"] == 1
    assert _suite_inputs(warm) == _suite_inputs(cold)
    assert (warm.decision, warm.condition, warm.mcdc) == (
        cold.decision, cold.condition, cold.mcdc,
    )
    assert [case.origin for case in warm.suite] == [
        case.origin for case in cold.suite
    ]


def test_third_run_is_a_fixed_point(tmp_path):
    """run2 learns nothing new and skips its write; run3 still hits."""
    config = StcgConfig(
        budget_s=2.0, seed=7, store=StoreConfig(path=str(tmp_path))
    )
    build = get_benchmark("CPUTask").build
    StcgGenerator(build(), config).run()
    second = StcgGenerator(build(), config)
    second.run()
    assert second.stats["store_writes"] == 0
    third = StcgGenerator(build(), config)
    third.run()
    assert third.stats["store_hits"] == 1
    assert third.stats["store_writes"] == 0


class TestFuzzCorpusSeeding:
    def _fuzz_config(self, tmp_path, **fuzz_kwargs):
        return StcgConfig(
            budget_s=1.5,
            seed=5,
            store=StoreConfig(path=str(tmp_path)),
            fuzz=FuzzConfig(executions=128, **fuzz_kwargs),
        )

    def test_store_reseeds_the_next_campaign(self, tmp_path):
        build = get_benchmark("CPUTask").build
        first = FuzzGenerator(build(), self._fuzz_config(tmp_path))
        first.run()
        host = first._host
        assert host.stats["store_writes"] == 1
        second = FuzzGenerator(build(), self._fuzz_config(tmp_path))
        second.run()
        assert second._host.stats["store_hits"] == 1
        assert second._host.stats["corpus_seeds"] > 0

    def test_hybrid_store_scope_is_distinct(self, tmp_path):
        build = get_benchmark("CPUTask").build
        FuzzGenerator(build(), self._fuzz_config(tmp_path)).run()
        hybrid = HybridGenerator(build(), self._fuzz_config(tmp_path))
        hybrid.run()
        # The Fuzz document must not warm a Hybrid cell.
        assert hybrid._host.stats["store_misses"] == 1

    def test_corpus_in_seeds_from_file(self, tmp_path):
        corpus_path = str(tmp_path / "corpus.json")
        build = get_benchmark("CPUTask").build
        exporter = FuzzGenerator(
            build(),
            StcgConfig(
                budget_s=1.5, seed=5,
                fuzz=FuzzConfig(executions=128, corpus_out=corpus_path),
            ),
        )
        exporter.run()
        with open(corpus_path) as handle:
            exported = json.load(handle)
        assert exported["entries"]

        importer = FuzzGenerator(
            build(),
            StcgConfig(
                budget_s=1.5, seed=6,
                fuzz=FuzzConfig(executions=128, corpus_in=corpus_path),
            ),
        )
        importer.run()
        assert importer._host.stats["fuzz_seed_entries"] >= len(
            exported["entries"]
        )

    def test_corpus_in_missing_file_fails_loudly(self, tmp_path):
        gen = FuzzGenerator(
            get_benchmark("CPUTask").build(),
            StcgConfig(
                budget_s=1.0, seed=5,
                fuzz=FuzzConfig(
                    executions=64,
                    corpus_in=str(tmp_path / "nope.json"),
                ),
            ),
        )
        with pytest.raises(ReproError):
            gen.run()

    def test_corpus_in_garbage_file_fails_loudly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        gen = FuzzGenerator(
            get_benchmark("CPUTask").build(),
            StcgConfig(
                budget_s=1.0, seed=5,
                fuzz=FuzzConfig(executions=64, corpus_in=str(bad)),
            ),
        )
        with pytest.raises(ReproError):
            gen.run()

    def test_store_corpus_garbage_degrades_softly(self, tmp_path):
        """A bad *store* corpus is soft (store_rejected), unlike a bad
        user-named --corpus-in file."""
        build = get_benchmark("CPUTask").build
        first = FuzzGenerator(build(), self._fuzz_config(tmp_path))
        first.run()
        # Scramble the corpus fold inside the stored document.
        import os

        (name,) = [
            p for p in os.listdir(tmp_path) if p.endswith(".json")
        ]
        path = os.path.join(str(tmp_path), name)
        with open(path) as handle:
            document = json.load(handle)
        document["payload"]["corpus"] = {"schema": "wrong/9", "entries": 7}
        with open(path, "w") as handle:
            json.dump(document, handle)

        second = FuzzGenerator(build(), self._fuzz_config(tmp_path))
        result = second.run()
        assert result.suite is not None  # run completed
        assert second._host.stats["store_rejected"] == 1
        assert second._host.stats["corpus_seeds"] == 0


class TestApiWiring:
    def test_generate_store_dir_round_trip(self, tmp_path):
        from repro import api

        first = api.generate(
            "CPUTask", tool="STCG", budget_s=2.0, seed=7,
            store_dir=str(tmp_path),
        )
        second = api.generate(
            "CPUTask", tool="STCG", budget_s=2.0, seed=7,
            store_dir=str(tmp_path),
        )
        assert second.stats["store_hits"] == 1
        assert _suite_inputs(first) == _suite_inputs(second)

    def test_generate_store_dir_rejects_non_stcg_tools(self, tmp_path):
        from repro import api
        from repro.errors import HarnessError

        with pytest.raises(HarnessError):
            api.generate(
                "CPUTask", tool="SLDV", budget_s=1.0,
                store_dir=str(tmp_path),
            )

    def test_store_stats_event_and_manifest_fold(self, tmp_path):
        from repro import api

        store = str(tmp_path / "store")
        events_path = str(tmp_path / "run.jsonl")
        api.generate(
            "CPUTask", tool="STCG", budget_s=1.5, seed=7, store_dir=store,
        )
        api.generate(
            "CPUTask", tool="STCG", budget_s=1.5, seed=7, store_dir=store,
            events_out=events_path,
        )
        events = [
            json.loads(line) for line in open(events_path)
        ]
        (stats_event,) = [
            e for e in events if e.get("event") == "store_stats"
        ]
        assert stats_event["hits"] == 1
        assert stats_event["restored_verdicts"] > 0
        manifest = json.load(
            open(str(tmp_path / "run.manifest.json"))
        )
        assert manifest["store"]["cells"] == 1
        assert manifest["store"]["hits"] == 1

    def test_run_experiment_store_dir(self, tmp_path):
        from repro import api

        store = str(tmp_path / "store")
        for _ in range(2):
            experiment = api.run_experiment(
                models=["CPUTask"], tools=["STCG"], budget_s=1.0,
                repetitions=1, store_dir=store,
                events_out=str(tmp_path / "mx.jsonl"),
            )
            assert not experiment.failures
        manifest = json.load(open(str(tmp_path / "mx.manifest.json")))
        assert manifest["store"]["hits"] == 1

    def test_report_renders_store_section(self, tmp_path):
        from repro import api
        from repro.obs.report import render_report
        from repro.telemetry.events import read_events

        store = str(tmp_path / "store")
        events_path = str(tmp_path / "run.jsonl")
        api.generate(
            "CPUTask", tool="STCG", budget_s=1.0, seed=7, store_dir=store,
            events_out=events_path,
        )
        report = render_report(read_events(events_path))
        assert "warm-start store" in report
        assert "CPUTask/STCG" in report
