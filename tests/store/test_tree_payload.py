"""StateTree to_payload/from_payload round-trip (the warm-start store)."""

import pytest

from repro.core.config import StcgConfig
from repro.core.state_tree import StateTree, TREE_SCHEMA
from repro.core.stcg import StcgGenerator
from repro.coverage.collector import ConditionObligation
from repro.model.state import ModelState
from repro.store.codec import CodecError
from tests.conftest import build_counter_model, build_queue_model


def _grown_tree(build, seed=5, budget=1.5):
    compiled = build()
    gen = StcgGenerator(compiled, StcgConfig(budget_s=budget, seed=seed))
    gen.run()
    return gen.tree


def _assert_equivalent(tree, restored):
    assert len(restored) == len(tree)
    assert restored.dedup_links == tree.dedup_links
    for original, copy in zip(tree, restored):
        assert copy.node_id == original.node_id
        assert copy.state.values == original.state.values
        assert copy.input == original.input
        assert copy.covered_branches == original.covered_branches
        assert copy.solved_branches == original.solved_branches
        assert copy.solved_obligations == original.solved_obligations
        parent = original.parent.node_id if original.parent else None
        assert (copy.parent.node_id if copy.parent else None) == parent
        assert copy.state.fingerprint() == original.state.fingerprint()


@pytest.mark.parametrize("build", [build_counter_model, build_queue_model])
def test_round_trip_grown_tree(build):
    tree = _grown_tree(build)
    assert len(tree) > 1
    restored = StateTree.from_payload(tree.to_payload())
    _assert_equivalent(tree, restored)


def test_round_trip_is_json_safe():
    import json

    tree = _grown_tree(build_queue_model)
    payload = json.loads(json.dumps(tree.to_payload()))
    _assert_equivalent(tree, StateTree.from_payload(payload))


def test_solved_sets_shared_after_restore():
    tree = _grown_tree(build_counter_model)
    payload = tree.to_payload()
    restored = StateTree.from_payload(payload)
    # Mark a branch solved on one node; every duplicate-state node must
    # see it (the shared-set plumbing survived the round trip).
    groups = {}
    for node in restored:
        groups.setdefault(node.state.fingerprint(), []).append(node)
    for nodes in groups.values():
        if len(nodes) > 1:
            nodes[0].set_solved(987654)
            assert all(n.is_solved(987654) for n in nodes)
            break


def test_obligation_round_trip():
    compiled = build_counter_model()
    tree = StateTree(ModelState(compiled.initial_state()))
    obligation = ConditionObligation(2, 0, True, True)
    tree.root.solved_obligations.add(obligation)
    restored = StateTree.from_payload(tree.to_payload())
    assert obligation in restored.root.solved_obligations


class TestMalformedPayloads:
    def test_wrong_schema_rejected(self):
        tree = _grown_tree(build_counter_model)
        payload = tree.to_payload()
        payload["schema"] = "repro.state_tree/0"
        with pytest.raises(CodecError):
            StateTree.from_payload(payload)

    def test_rootless_payload_rejected(self):
        tree = _grown_tree(build_counter_model)
        payload = tree.to_payload()
        payload["nodes"][0]["parent"] = 0
        with pytest.raises(CodecError):
            StateTree.from_payload(payload)

    def test_dangling_parent_rejected(self):
        tree = _grown_tree(build_counter_model)
        payload = tree.to_payload()
        if len(payload["nodes"]) > 1:
            payload["nodes"][-1]["parent"] = 10_000
            with pytest.raises(CodecError):
                StateTree.from_payload(payload)

    def test_schema_constant_is_versioned(self):
        assert TREE_SCHEMA.startswith("repro.state_tree/")
