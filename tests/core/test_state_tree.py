"""Tests for the state tree, input library and test-case containers."""

import random

import pytest

from repro.core.input_library import InputLibrary
from repro.core.state_tree import StateTree
from repro.core.testcase import TestCase, TestSuite, parse_suite_text
from repro.model.state import ModelState


def state(**values):
    return ModelState(values)


class TestStateTree:
    def test_root_only(self):
        tree = StateTree(state(x=0))
        assert len(tree) == 1
        assert tree.root.parent is None
        assert tree.root.input is None

    def test_add_child(self):
        tree = StateTree(state(x=0))
        child = tree.add_child(tree.root, state(x=1), {"u": 5})
        assert child.parent is tree.root
        assert child in tree.root.children
        assert len(tree) == 2
        assert child.depth() == 1

    def test_path_inputs(self):
        tree = StateTree(state(x=0))
        a = tree.add_child(tree.root, state(x=1), {"u": 1})
        b = tree.add_child(a, state(x=2), {"u": 2})
        assert b.path_inputs() == [{"u": 1}, {"u": 2}]
        assert tree.root.path_inputs() == []

    def test_solved_bookkeeping(self):
        tree = StateTree(state(x=0))
        node = tree.add_child(tree.root, state(x=1), {"u": 1})
        assert not node.is_solved(3)
        node.set_solved(3)
        assert node.is_solved(3)

    def test_identical_states_share_solved_sets(self):
        """Equal states must not be re-solved (signature sharing)."""
        tree = StateTree(state(x=0))
        a = tree.add_child(tree.root, state(x=5), {"u": 1})
        b = tree.add_child(tree.root, state(x=5), {"u": 2})
        a.set_solved(7)
        assert b.is_solved(7)

    def test_different_states_do_not_share(self):
        tree = StateTree(state(x=0))
        a = tree.add_child(tree.root, state(x=5), {"u": 1})
        b = tree.add_child(tree.root, state(x=6), {"u": 2})
        a.set_solved(7)
        assert not b.is_solved(7)

    def test_encoding_shared_by_fingerprint(self):
        """Equal states hit the same SolveCache encoding slot."""
        from repro.cache import SolveCache

        tree = StateTree(state(x=0))
        a = tree.add_child(tree.root, state(x=5), {"u": 1})
        b = tree.add_child(tree.root, state(x=5), {"u": 2})
        cache = SolveCache("M")
        calls = []

        def factory():
            calls.append(1)
            return object()

        enc_a = cache.encoding(a.state.fingerprint(), factory)
        enc_b = cache.encoding(b.state.fingerprint(), factory)
        assert enc_a is enc_b
        assert len(calls) == 1
        assert cache.stats()["encoding_hits"] == 1

    def test_duplicate_states_dedup_solve_scan(self):
        tree = StateTree(state(x=0))
        a = tree.add_child(tree.root, state(x=5), {"u": 1})
        b = tree.add_child(tree.root, state(x=5), {"u": 2})
        assert a.is_canonical and not b.is_canonical
        assert b.canonical is a
        assert tree.dedup_links == 1
        assert tree.unique_states() == 2  # root + x=5
        scanned = list(tree.solve_nodes())
        assert a in scanned and b not in scanned
        # Duplicates stay real tree nodes: paths and random picks see them.
        assert len(tree) == 3
        assert b.path_inputs() == [{"u": 2}]

    def test_dedup_off_scans_every_node(self):
        tree = StateTree(state(x=0), dedup=False)
        a = tree.add_child(tree.root, state(x=5), {"u": 1})
        b = tree.add_child(tree.root, state(x=5), {"u": 2})
        scanned = list(tree.solve_nodes())
        assert a in scanned and b in scanned
        # Sharing is unconditional — only the scan changes.
        a.set_solved(7)
        assert b.is_solved(7)
        assert tree.dedup_links == 1

    def test_random_node(self):
        tree = StateTree(state(x=0))
        for i in range(5):
            tree.add_child(tree.root, state(x=i + 1), {"u": i})
        rng = random.Random(0)
        seen = {tree.random_node(rng).node_id for _ in range(50)}
        assert len(seen) > 3

    def test_leaves_and_depth(self):
        tree = StateTree(state(x=0))
        a = tree.add_child(tree.root, state(x=1), {"u": 1})
        tree.add_child(a, state(x=2), {"u": 2})
        leaf_ids = {n.node_id for n in tree.leaves()}
        assert a.node_id not in leaf_ids
        assert tree.max_depth() == 2

    def test_find_by_state(self):
        tree = StateTree(state(x=0))
        tree.add_child(tree.root, state(x=9), {"u": 1})
        assert tree.find_by_state(state(x=9)) is not None
        assert tree.find_by_state(state(x=123)) is None

    def test_render(self):
        tree = StateTree(state(x=0))
        child = tree.add_child(tree.root, state(x=1), {"u": 1})
        child.covered_branches = {2}
        text = tree.render()
        assert "S0" in text
        assert "S1" in text
        assert "covers=[2]" in text

    def test_render_truncates(self):
        tree = StateTree(state(x=0))
        for i in range(30):
            tree.add_child(tree.root, state(x=i + 1), {"u": i})
        text = tree.render(max_nodes=5)
        assert "more nodes" in text


class TestInputLibrary:
    def test_add_and_draw(self):
        library = InputLibrary()
        assert library.is_empty
        assert library.add({"u": 1})
        assert len(library) == 1
        assert library.random_input(random.Random(0)) == {"u": 1}

    def test_duplicates_rejected(self):
        library = InputLibrary()
        assert library.add({"u": 1})
        assert not library.add({"u": 1})
        assert len(library) == 1

    def test_draws_are_copies(self):
        library = InputLibrary()
        library.add({"u": 1})
        drawn = library.random_input(random.Random(0))
        drawn["u"] = 999
        assert library.random_input(random.Random(0)) == {"u": 1}

    def test_random_sequence_length(self):
        library = InputLibrary()
        library.add({"u": 1})
        library.add({"u": 2})
        seq = library.random_sequence(random.Random(0), 7)
        assert len(seq) == 7

    def test_empty_draw_raises(self):
        with pytest.raises(IndexError):
            InputLibrary().random_input(random.Random(0))


class TestTestCases:
    def test_text_export_shape(self):
        case = TestCase(
            inputs=[{"a": 1, "b": True}, {"a": 2, "b": False}],
            origin="solver",
        )
        text = case.to_text(["a", "b"])
        lines = text.splitlines()
        assert lines[0] == "step\ta\tb"
        assert lines[1] == "0\t1\t1"
        assert lines[2] == "1\t2\t0"

    def test_suite_export_and_parse_round_trip(self):
        suite = TestSuite("M", ["a"])
        suite.add(TestCase(inputs=[{"a": 1}, {"a": 2}]))
        suite.add(TestCase(inputs=[{"a": 3}], origin="random"))
        text = suite.to_text()
        parsed = parse_suite_text(text)
        assert len(parsed) == 2
        assert parsed[0] == [{"a": "1"}, {"a": "2"}]
        assert parsed[1] == [{"a": "3"}]

    def test_suite_totals(self):
        suite = TestSuite("M", ["a"])
        suite.add(TestCase(inputs=[{"a": 1}, {"a": 2}]))
        suite.add(TestCase(inputs=[{"a": 3}]))
        assert len(suite) == 2
        assert suite.total_steps() == 3

    def test_replay_reproduces_coverage(self, counter_model):
        from repro.core import StcgConfig, StcgGenerator

        generator = StcgGenerator(counter_model, StcgConfig(budget_s=5, seed=0))
        result = generator.run()
        from tests.conftest import build_counter_model

        replayed = result.suite.replay(build_counter_model())
        assert (
            replayed.decision_coverage()
            == generator.collector.decision_coverage()
        )

    def test_float_formatting(self):
        case = TestCase(inputs=[{"r": 0.123456789}])
        assert "0.123457" in case.to_text(["r"])
