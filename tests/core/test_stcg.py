"""Tests for the STCG generator: the paper's Algorithms 1 and 2."""

import itertools


from repro.core import StcgConfig, StcgGenerator
from repro.core.result import ORIGIN_RANDOM, ORIGIN_SOLVER

from tests.conftest import build_queue_model


def run_stcg(compiled, **overrides):
    defaults = dict(budget_s=10.0, seed=0)
    defaults.update(overrides)
    generator = StcgGenerator(compiled, StcgConfig(**defaults))
    return generator, generator.run()


class TestFullCoverage:
    def test_counter_model_full_coverage(self, counter_model):
        generator, result = run_stcg(counter_model)
        assert result.decision == 1.0
        assert result.condition == 1.0
        assert not generator.collector.uncovered_branches()

    def test_queue_model_full_coverage(self, queue_model):
        generator, result = run_stcg(queue_model)
        assert result.decision == 1.0
        assert result.mcdc == 1.0

    def test_stops_early_on_full_coverage(self, counter_model):
        generator, result = run_stcg(counter_model, budget_s=60.0)
        # Must finish long before the budget on this tiny model.
        assert all(e.t < 10.0 for e in result.timeline)


class TestStateAwareMechanics:
    def test_state_dependent_branch_needs_tree(self, queue_model):
        """Pop-success is unreachable from S0; the tree makes it solvable."""
        generator, result = run_stcg(queue_model)
        pop_branches = [
            b for b in queue_model.registry.branches
            if b.depth > 0 and "o1" in b.label
        ]
        assert all(
            generator.collector.is_branch_covered(b) for b in pop_branches
        )
        # At least one constant-false skip must have occurred (the pop
        # branch folds to false on the empty-queue root state).
        assert generator.stats["const_false_skips"] > 0

    def test_solved_inputs_stored_in_library(self, queue_model):
        generator, _ = run_stcg(queue_model)
        assert len(generator.library) > 0

    def test_tree_grows(self, queue_model):
        generator, result = run_stcg(queue_model)
        assert result.stats["tree_nodes"] > 1

    def test_test_cases_have_origins(self, queue_model):
        _, result = run_stcg(queue_model)
        assert len(result.suite) > 0
        for case in result.suite:
            assert case.origin in (ORIGIN_SOLVER, ORIGIN_RANDOM)

    def test_timeline_is_monotone(self, queue_model):
        _, result = run_stcg(queue_model)
        times = [e.t for e in result.timeline]
        assert times == sorted(times)
        coverages = [e.decision_coverage for e in result.timeline]
        assert coverages == sorted(coverages)


class TestDeterminism:
    def test_same_seed_same_result(self, queue_model):
        from tests.conftest import build_queue_model

        _, a = run_stcg(build_queue_model(), seed=42)
        _, b = run_stcg(build_queue_model(), seed=42)
        assert a.decision == b.decision
        assert len(a.suite) == len(b.suite)
        assert [c.inputs for c in a.suite] == [c.inputs for c in b.suite]


class TestBudget:
    def test_wall_clock_budget_respected(self, queue_model):
        import time

        start = time.monotonic()
        run_stcg(queue_model, budget_s=1.0)
        assert time.monotonic() - start < 4.0

    def test_injected_clock(self, counter_model):
        ticks = itertools.count(start=0.0, step=0.5)
        generator = StcgGenerator(
            counter_model,
            StcgConfig(budget_s=3.0, seed=0),
            clock=lambda: next(ticks) * 1.0,
        )
        result = generator.run()  # terminates via the fake clock
        assert result is not None


class TestConfigVariants:
    def test_random_warmup_runs_first(self, queue_model):
        generator, result = run_stcg(
            queue_model, budget_s=6.0, random_warmup_s=1.0
        )
        assert generator.stats["warmup_steps"] > 0

    def test_fresh_random_inputs_mode(self, queue_model):
        generator, result = run_stcg(
            queue_model, budget_s=5.0, fresh_random_inputs=True
        )
        assert result.decision == 1.0

    def test_library_only_mode(self, queue_model):
        generator, result = run_stcg(
            queue_model, budget_s=5.0, fresh_input_mix=0.0
        )
        # Queue model is solvable library-only.
        assert result.decision == 1.0

    def test_skip_constant_false_off_still_correct(self, queue_model):
        generator, result = run_stcg(
            queue_model, budget_s=10.0, skip_constant_false=False
        )
        assert result.decision == 1.0
        assert generator.stats["const_false_skips"] == 0

    def test_tree_node_cap_respected(self, queue_model):
        generator, result = run_stcg(
            queue_model, budget_s=3.0, max_tree_nodes=16,
            stop_on_full_coverage=False,
        )
        assert result.stats["tree_nodes"] <= 16
        # Execution continues past the cap (steps exceed nodes).
        assert result.stats["steps_executed"] >= result.stats["tree_nodes"]

    def test_trace_recording(self, queue_model):
        generator, _ = run_stcg(queue_model, record_trace=True)
        kinds = {entry.kind for entry in generator.trace}
        assert "solve_ok" in kinds
        assert "exec" in kinds

    def test_trace_off_by_default(self, queue_model):
        generator, _ = run_stcg(queue_model)
        assert generator.trace == []

    def test_trace_records_new_node_ids(self, queue_model):
        """Execution entries report the tree nodes they created."""
        generator, _ = run_stcg(queue_model, record_trace=True)
        exec_entries = [
            e for e in generator.trace if e.kind in ("exec", "random")
        ]
        assert exec_entries
        created = [i for e in exec_entries for i in e.new_node_ids]
        # The tree grew, and every growth step must be attributed.
        assert created
        assert len(generator.tree) == 1 + len(created)  # root pre-exists
        # Ids are unique across entries and actually live in the tree.
        assert len(created) == len(set(created))
        tree_ids = {node.node_id for node in generator.tree}
        assert set(created) <= tree_ids


class TestDeepTracing:
    """The repro.trace/1 layer must observe without perturbing."""

    def test_stats_identical_with_tracer_on_and_off(self):
        from tests.conftest import build_queue_model

        _, plain = run_stcg(build_queue_model(), seed=11)
        _, traced = run_stcg(build_queue_model(), seed=11, trace=True)
        assert plain.stats == traced.stats
        assert [c.inputs for c in plain.suite] == \
            [c.inputs for c in traced.suite]
        assert plain.trace_data == {}
        assert traced.trace_data

    def test_trace_data_shape(self, queue_model):
        _, result = run_stcg(queue_model, trace=True)
        data = result.trace_data
        assert data["schema"] == "repro.trace/1"
        assert "solve_scan" in data["phase_totals"]
        assert "solve" in data["phase_totals"]
        stages = data["solver_stages"]
        finished = sum(int(s["finished"]) for s in stages.values())
        wins = sum(int(s["wins"]) for s in stages.values())
        assert finished == result.stats["solver_calls"]
        assert wins == result.stats["sat"]
        # Tree growth was sampled and reaches the final node count.
        points = data["tree_growth"]
        assert points and int(points[-1][1]) == result.stats["tree_nodes"]

    def test_explicit_tracer_instance(self, queue_model):
        from repro.core import StcgConfig, StcgGenerator
        from repro.obs import SpanTracer

        tracer = SpanTracer()
        generator = StcgGenerator(
            queue_model, StcgConfig(budget_s=10.0, seed=0), tracer=tracer
        )
        result = generator.run()
        assert generator.tracer is tracer
        names = {span.name for span in tracer.spans}
        assert {"solve_scan", "solve", "sim_step"} <= names
        assert tracer.counters["sim_steps"] == result.stats["steps_executed"]


class TestObligationTargeting:
    def test_mcdc_obligations_pursued(self, queue_model):
        """Branch coverage alone does not give MCDC; the obligation pass
        must close the gap."""
        generator, result = run_stcg(queue_model, budget_s=15.0)
        assert result.mcdc == 1.0
        assert not generator.collector.unsatisfied_condition_obligations()


class TestResultShape:
    def test_stats_keys(self, counter_model):
        _, result = run_stcg(counter_model)
        for key in (
            "solver_calls", "sat", "unsat", "unknown",
            "const_false_skips", "steps_executed", "tree_nodes",
        ):
            assert key in result.stats

    def test_coverage_at(self, queue_model):
        _, result = run_stcg(queue_model)
        assert result.coverage_at(-1.0) == 0.0
        assert result.coverage_at(1e9) == result.decision

    def test_suite_metadata(self, queue_model):
        _, result = run_stcg(queue_model)
        assert result.suite.model_name == "Queue"
        assert result.suite.input_names == ["op", "key"]
