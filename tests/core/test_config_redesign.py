"""The redesigned config surface: kernels=/caches= sub-configs.

Pins the post-deprecation contract: the pre-redesign flat constructor
keywords (``sim_kernel``, ``encoding_cache_size``, ``verdict_cache``,
``tree_dedup``) are gone — passing one is an ordinary ``TypeError``, and
the flat names no longer exist as read-back properties; the sub-config
surface is warning-free and round-trips through
:func:`dataclasses.replace`.
"""

import warnings
from dataclasses import replace

import pytest

from repro import api
from repro.core.config import CacheConfig, KernelConfig, StcgConfig
from repro.errors import ConfigError, HarnessError

from tests.conftest import build_counter_model


class TestRemovedAliases:
    @pytest.mark.parametrize(
        "alias, value",
        [
            ("sim_kernel", False),
            ("encoding_cache_size", 7),
            ("verdict_cache", False),
            ("tree_dedup", False),
        ],
    )
    def test_flat_keyword_is_an_ordinary_type_error(self, alias, value):
        with pytest.raises(TypeError, match=alias):
            StcgConfig(**{alias: value})

    @pytest.mark.parametrize(
        "alias",
        ["sim_kernel", "encoding_cache_size", "verdict_cache", "tree_dedup"],
    )
    def test_flat_read_back_property_is_gone(self, alias):
        config = StcgConfig()
        assert not hasattr(config, alias)


class TestNewStyleSurface:
    def test_new_style_construction_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = StcgConfig(
                kernels=KernelConfig(sim=False, solver=False),
                caches=CacheConfig(encoding_size=9, compiled_size=4),
            )
        assert config.kernels.sim is False
        assert config.caches.encoding_size == 9
        assert config.caches.compiled_size == 4

    def test_round_trips_through_dataclasses_replace(self):
        config = StcgConfig(budget_s=2.0, seed=5)
        flipped = replace(
            config, kernels=replace(config.kernels, solver=False)
        )
        assert flipped.kernels == KernelConfig(sim=True, solver=False)
        assert flipped.budget_s == 2.0 and flipped.seed == 5
        assert config.kernels.solver is True  # original untouched

    def test_sub_configs_must_be_typed(self):
        with pytest.raises(ConfigError, match="KernelConfig"):
            StcgConfig(kernels={"sim": False})
        with pytest.raises(ConfigError, match="CacheConfig"):
            StcgConfig(caches={"verdicts": False})


class TestApiOverrides:
    def test_stcg_overrides_reach_the_generator(self):
        result = api.generate(
            build_counter_model(),
            budget_s=2.0,
            seed=3,
            stcg_overrides={
                "kernels": api.KernelConfig(solver=False),
                "caches": api.CacheConfig(verdicts=False),
            },
        )
        baseline = api.generate(build_counter_model(), budget_s=2.0, seed=3)
        assert [c.inputs for c in result.suite] == [
            c.inputs for c in baseline.suite
        ]

    def test_stcg_overrides_exclusive_with_config(self):
        with pytest.raises(HarnessError, match="not both"):
            api.generate(
                build_counter_model(),
                config=StcgConfig(budget_s=1.0),
                stcg_overrides={"kernels": api.KernelConfig()},
            )

    def test_stcg_overrides_rejected_for_other_tools(self):
        with pytest.raises(HarnessError, match="STCG/Fuzz/Hybrid only"):
            api.generate(
                build_counter_model(),
                tool="SLDV",
                budget_s=1.0,
                stcg_overrides={"kernels": api.KernelConfig()},
            )
