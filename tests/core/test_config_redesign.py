"""The redesigned config surface: kernels=/caches= plus flat aliases.

Pins the one-release deprecation contract: every pre-redesign flat
constructor keyword still works, warns :class:`DeprecationWarning`, and
maps onto the equivalent sub-config field; mixing an alias with the
sub-config it maps into is refused; the new-style surface is warning-free
and round-trips through :func:`dataclasses.replace`.
"""

import warnings
from dataclasses import replace

import pytest

from repro import api
from repro.core.config import CacheConfig, KernelConfig, StcgConfig
from repro.errors import ConfigError, HarnessError

from tests.conftest import build_counter_model


class TestDeprecatedAliases:
    @pytest.mark.parametrize(
        "alias, value, group, attr",
        [
            ("sim_kernel", False, "kernels", "sim"),
            ("encoding_cache_size", 7, "caches", "encoding_size"),
            ("verdict_cache", False, "caches", "verdicts"),
            ("tree_dedup", False, "caches", "tree_dedup"),
        ],
    )
    def test_alias_warns_and_maps_onto_sub_config(
        self, alias, value, group, attr
    ):
        with pytest.warns(DeprecationWarning, match=alias):
            config = StcgConfig(**{alias: value})
        assert getattr(getattr(config, group), attr) == value
        # The flat name stays readable (without a warning) as a property.
        assert getattr(config, alias) == value

    def test_multiple_aliases_group_into_both_sub_configs(self):
        with pytest.warns(DeprecationWarning) as caught:
            config = StcgConfig(
                sim_kernel=False, encoding_cache_size=3, verdict_cache=False
            )
        assert len(caught) == 1  # one warning naming all the aliases
        message = str(caught[0].message)
        for alias in ("sim_kernel", "encoding_cache_size", "verdict_cache"):
            assert alias in message
        assert config.kernels == KernelConfig(sim=False)
        assert config.caches == CacheConfig(encoding_size=3, verdicts=False)
        # Untouched fields keep their defaults.
        assert config.kernels.solver is True
        assert config.caches.tree_dedup is True

    def test_mixing_alias_with_its_sub_config_is_refused(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError, match="not both"):
                StcgConfig(sim_kernel=False, kernels=KernelConfig(sim=True))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigError, match="not both"):
                StcgConfig(
                    tree_dedup=False, caches=CacheConfig(encoding_size=1)
                )

    def test_alias_for_one_group_composes_with_the_other_group(self):
        with pytest.warns(DeprecationWarning):
            config = StcgConfig(
                sim_kernel=False, caches=CacheConfig(verdicts=False)
            )
        assert config.kernels.sim is False
        assert config.caches.verdicts is False


class TestNewStyleSurface:
    def test_new_style_construction_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = StcgConfig(
                kernels=KernelConfig(sim=False, solver=False),
                caches=CacheConfig(encoding_size=9, compiled_size=4),
            )
        assert config.sim_kernel is False
        assert config.encoding_cache_size == 9
        assert config.caches.compiled_size == 4

    def test_round_trips_through_dataclasses_replace(self):
        config = StcgConfig(budget_s=2.0, seed=5)
        flipped = replace(
            config, kernels=replace(config.kernels, solver=False)
        )
        assert flipped.kernels == KernelConfig(sim=True, solver=False)
        assert flipped.budget_s == 2.0 and flipped.seed == 5
        assert config.kernels.solver is True  # original untouched

    def test_sub_configs_must_be_typed(self):
        with pytest.raises(ConfigError, match="KernelConfig"):
            StcgConfig(kernels={"sim": False})
        with pytest.raises(ConfigError, match="CacheConfig"):
            StcgConfig(caches={"verdicts": False})


class TestApiOverrides:
    def test_stcg_overrides_reach_the_generator(self):
        result = api.generate(
            build_counter_model(),
            budget_s=2.0,
            seed=3,
            stcg_overrides={
                "kernels": api.KernelConfig(solver=False),
                "caches": api.CacheConfig(verdicts=False),
            },
        )
        baseline = api.generate(build_counter_model(), budget_s=2.0, seed=3)
        assert [c.inputs for c in result.suite] == [
            c.inputs for c in baseline.suite
        ]

    def test_stcg_overrides_exclusive_with_config(self):
        with pytest.raises(HarnessError, match="not both"):
            api.generate(
                build_counter_model(),
                config=StcgConfig(budget_s=1.0),
                stcg_overrides={"kernels": api.KernelConfig()},
            )

    def test_stcg_overrides_rejected_for_other_tools(self):
        with pytest.raises(HarnessError, match="STCG only"):
            api.generate(
                build_counter_model(),
                tool="SLDV",
                budget_s=1.0,
                stcg_overrides={"kernels": api.KernelConfig()},
            )
