"""Tests for generation results and timeline math."""


from repro.core.result import (
    GenerationResult,
    ORIGIN_RANDOM,
    ORIGIN_SOLVER,
    ORIGIN_TOOL,
    TimelineEvent,
)
from repro.core.testcase import TestSuite
from repro.coverage.collector import CoverageSummary


def make_result(events):
    return GenerationResult(
        tool="T",
        model_name="M",
        summary=CoverageSummary(0.8, 0.7, 0.6, 8, 10),
        suite=TestSuite("M", ["u"]),
        timeline=[TimelineEvent(*e) for e in events],
    )


class TestCoverageAt:
    def test_empty_timeline(self):
        result = make_result([])
        assert result.coverage_at(100.0) == 0.0

    def test_step_function(self):
        result = make_result(
            [(1.0, 0.3, ORIGIN_SOLVER), (5.0, 0.7, ORIGIN_RANDOM)]
        )
        assert result.coverage_at(0.5) == 0.0
        assert result.coverage_at(1.0) == 0.3
        assert result.coverage_at(4.9) == 0.3
        assert result.coverage_at(5.0) == 0.7
        assert result.coverage_at(99.0) == 0.7

    def test_monotone_even_with_out_of_order_events(self):
        result = make_result(
            [(5.0, 0.7, ORIGIN_SOLVER), (1.0, 0.3, ORIGIN_SOLVER)]
        )
        assert result.coverage_at(2.0) == 0.3
        assert result.coverage_at(6.0) == 0.7


class TestAccessors:
    def test_metric_properties(self):
        result = make_result([])
        assert result.decision == 0.8
        assert result.condition == 0.7
        assert result.mcdc == 0.6

    def test_repr(self):
        text = repr(make_result([]))
        assert "T on M" in text
        assert "80%" in text

    def test_origin_constants_distinct(self):
        assert len({ORIGIN_SOLVER, ORIGIN_RANDOM, ORIGIN_TOOL}) == 3


class TestTimelineEventFields:
    def test_new_branches_default(self):
        event = TimelineEvent(1.0, 0.5, ORIGIN_SOLVER)
        assert event.new_branches == 0
