"""Observational transparency of the solve caches.

The central contract of ``repro.cache`` (and this PR's acceptance bar):
with a fixed seed, generation results are **bit-identical** with the
caches on, off, or pre-warmed.  The caches may only change how much work
is done, never what is produced.
"""

import pytest

from repro.cache import SolveCache
from repro.core import StcgConfig, StcgGenerator
from repro.core.config import CacheConfig

from tests.conftest import build_counter_model, build_queue_model

BUDGET = 10.0


def run(compiled, *, cache=None, **overrides):
    defaults = dict(budget_s=BUDGET, seed=7)
    defaults.update(overrides)
    generator = StcgGenerator(
        compiled, StcgConfig(**defaults), cache=cache
    )
    return generator, generator.run()


def assert_identical(a, b, *, compare_stats=True):
    """Two GenerationResults are bit-identical where determinism demands."""
    assert [case.inputs for case in a.suite] == [
        case.inputs for case in b.suite
    ]
    assert [case.origin for case in a.suite] == [
        case.origin for case in b.suite
    ]
    assert (a.decision, a.condition, a.mcdc) == (
        b.decision, b.condition, b.mcdc,
    )
    if compare_stats:
        assert a.stats == b.stats


@pytest.mark.parametrize("build", [build_counter_model, build_queue_model])
class TestCacheOnVsOff:
    def test_disabling_both_caches_changes_nothing(self, build):
        _, with_caches = run(build())
        _, without = run(
            build(), caches=CacheConfig(encoding_size=0, verdicts=False)
        )
        assert_identical(with_caches, without)

    def test_tiny_encoding_cache_changes_nothing(self, build):
        # Constant eviction pressure: every rebuild must be deterministic.
        _, roomy = run(build())
        _, tiny = run(build(), caches=CacheConfig(encoding_size=1))
        assert_identical(roomy, tiny)

    def test_tiny_compiled_cache_changes_nothing(self, build):
        # Compiled-bundle eviction (and the first-visit markers with it)
        # only changes when the solver kernel compiles, never results.
        _, roomy = run(build())
        _, tiny = run(build(), caches=CacheConfig(compiled_size=1))
        assert_identical(roomy, tiny)

    def test_dedup_off_changes_nothing(self, build):
        _, deduped = run(build())
        _, full_scan = run(build(), caches=CacheConfig(tree_dedup=False))
        assert_identical(deduped, full_scan)

    def test_everything_off_matches_everything_on(self, build):
        _, on = run(build())
        _, off = run(
            build(),
            caches=CacheConfig(
                encoding_size=0,
                compiled_size=0,
                verdicts=False,
                tree_dedup=False,
            ),
        )
        assert_identical(on, off)


class TestWarmCacheTransparency:
    def test_shared_cache_skips_work_but_not_results(self):
        """A generator running against a pre-warmed cache must produce the
        same suite as a cold one — while provably skipping solver calls."""
        compiled = build_queue_model()
        shared = SolveCache(compiled.name)
        _, cold = run(compiled, cache=shared)
        assert shared.verdict_entries > 0, (
            "queue model should produce deterministic UNSAT/const-false "
            "verdicts to cache"
        )
        warm_generator, warm = run(compiled, cache=shared)
        assert warm_generator.stats["verdict_skips"] > 0
        assert_identical(cold, warm, compare_stats=False)
        # The warm run did strictly less solver work.
        assert (
            warm.stats["solver_calls"] + warm.stats["const_false_skips"]
            < cold.stats["solver_calls"] + cold.stats["const_false_skips"]
        )
        # ... and what it skipped is exactly what it remembered.
        assert shared.verdict_hits == warm.stats["verdict_skips"]

    def test_warm_encoding_cache_hits(self):
        compiled = build_counter_model()
        shared = SolveCache(compiled.name)
        run(compiled, cache=shared)
        misses_after_cold = shared.stats()["encoding_misses"]
        run(compiled, cache=shared)
        stats = shared.stats()
        assert stats["encoding_hits"] > 0
        # The warm run re-encodes only states the cold run never reached.
        assert stats["encoding_misses"] <= 2 * misses_after_cold


class TestGeneratorCacheWiring:
    def test_default_cache_honors_config(self):
        compiled = build_counter_model()
        generator = StcgGenerator(
            compiled,
            StcgConfig(budget_s=1.0,
                       caches=CacheConfig(encoding_size=3, compiled_size=5,
                                          verdicts=False)),
        )
        assert generator.cache.encodings.capacity == 3
        assert generator.cache.compiled.capacity == 5
        assert not generator.cache.verdicts_enabled

    def test_trace_counters_carry_cache_stats(self):
        compiled = build_counter_model()
        generator, result = run(compiled, trace=True)
        cache_section = result.trace_data["cache"]
        for key in (
            "encoding_hits", "encoding_misses", "encoding_evictions",
            "verdict_hits", "verdict_entries", "verdict_skips",
            "dedup_links", "unique_states",
        ):
            assert key in cache_section
        assert cache_section["unique_states"] == generator.tree.unique_states()
        counters = result.trace_data["counters"]
        assert counters["encoding_misses"] > 0
        assert counters["dedup_links"] == generator.tree.dedup_links

    def test_dedup_links_occur_on_state_revisits(self):
        compiled = build_queue_model()
        generator, _ = run(compiled)
        assert generator.tree.dedup_links > 0
        assert generator.tree.unique_states() < len(generator.tree)

    def test_invalid_cache_size_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="encoding_size"):
            CacheConfig(encoding_size=-1)
        with pytest.raises(ConfigError, match="compiled_size"):
            CacheConfig(compiled_size=-1)
        # Validation fires through the StcgConfig surface too.
        with pytest.raises(ConfigError, match="encoding_size"):
            StcgConfig(caches=CacheConfig(encoding_size=-1))
