"""Property tests for the state content fingerprint.

The fingerprint is the key of every solve cache, so three properties are
load-bearing: order independence, consistency with ``==`` (the cache must
partition states exactly like the existing signature-tuple sharing), and
stability across processes and ``PYTHONHASHSEED`` values (the digests in
telemetry and any future on-disk cache must mean the same thing
everywhere).
"""

import math
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.fingerprint import fingerprint_value, state_fingerprint
from repro.model.state import ModelState

# Scalars a ModelState actually holds, plus the defensive extras.
scalars = st.one_of(
    st.booleans(),
    st.integers(-(2**63), 2**63),
    st.floats(allow_nan=False, width=64),
    st.text(max_size=20),
    st.none(),
)
values = st.one_of(scalars, st.tuples(scalars), st.lists(scalars, max_size=4))
state_dicts = st.dictionaries(st.text(min_size=1, max_size=30), values, max_size=8)


class TestOrderIndependence:
    @given(state_dicts)
    @settings(max_examples=200, deadline=None)
    def test_permutation_invariant(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert state_fingerprint(mapping) == state_fingerprint(reordered)

    def test_explicit_permutation(self):
        a = {"x": 1, "y": 2, "z": (3, 4)}
        b = {"z": (3, 4), "y": 2, "x": 1}
        assert state_fingerprint(a) == state_fingerprint(b)


class TestEqualityConsistency:
    """``==``-equal mappings must collide; ``!=`` ones must not."""

    @given(state_dicts, state_dicts)
    @settings(max_examples=200, deadline=None)
    def test_matches_python_equality(self, a, b):
        if a == b:
            assert state_fingerprint(a) == state_fingerprint(b)
        else:
            assert state_fingerprint(a) != state_fingerprint(b)

    def test_bool_int_float_collapse(self):
        # True == 1 == 1.0 in Python; signature-tuple sharing relies on it.
        assert fingerprint_value(True) == fingerprint_value(1) == fingerprint_value(1.0)
        assert fingerprint_value(0) == fingerprint_value(False)
        assert fingerprint_value(1) != fingerprint_value(2)
        assert fingerprint_value(1) != fingerprint_value("1")

    @given(state_dicts, st.text(min_size=1, max_size=30), values, values)
    @settings(max_examples=200, deadline=None)
    def test_single_value_change_changes_digest(self, mapping, key, old, new):
        if old == new:
            return
        with_old = {**mapping, key: old}
        with_new = {**mapping, key: new}
        assert state_fingerprint(with_old) != state_fingerprint(with_new)

    def test_key_set_matters(self):
        assert state_fingerprint({"a": 1}) != state_fingerprint({"b": 1})
        assert state_fingerprint({"a": 1}) != state_fingerprint({"a": 1, "b": 0})

    def test_structure_cannot_collide_by_concatenation(self):
        assert fingerprint_value(("ab", "c")) != fingerprint_value(("a", "bc"))
        assert fingerprint_value((1, (2, 3))) != fingerprint_value((1, 2, 3))

    def test_special_floats(self):
        assert fingerprint_value(math.nan) == fingerprint_value(math.nan)
        assert fingerprint_value(math.inf) != fingerprint_value(-math.inf)
        assert fingerprint_value(math.inf) != fingerprint_value(math.nan)
        assert fingerprint_value(0.5) == fingerprint_value(0.5)
        assert fingerprint_value(0.5) != fingerprint_value(0.25)

    def test_sets_are_order_independent(self):
        assert fingerprint_value({3, 1, 2}) == fingerprint_value({2, 3, 1})

    def test_numpy_values_fingerprint_by_content(self):
        numpy = pytest.importorskip("numpy")
        assert fingerprint_value(numpy.int64(7)) == fingerprint_value(7)
        assert fingerprint_value(numpy.float64(1.0)) == fingerprint_value(1)
        assert fingerprint_value(numpy.array([1, 2, 3])) == fingerprint_value(
            [1, 2, 3]
        )

    def test_unknown_types_raise(self):
        with pytest.raises(TypeError, match="cannot fingerprint"):
            fingerprint_value(object())


class TestStability:
    """Digests are pinned: changing the encoding invalidates every cache
    keyed on it, so a change here must be deliberate."""

    GOLDEN = {
        (): "df3f619804a92fdb4057192dc43dd748",
        (("x", 0),): "7f3f3ed3cda305fdcd1d4e3a1ad10ea1",
        (
            ("$store.q", (1, 2, 3)),
            ("chart.mode", "Idle"),
            ("n", 2.5),
        ): "f3393a71de9e70e51a628a80155af29f",
    }

    def test_golden_digests(self):
        for items, expected in self.GOLDEN.items():
            assert state_fingerprint(dict(items)) == expected

    def test_digest_shape(self):
        digest = state_fingerprint({"x": 1})
        assert len(digest) == 32
        int(digest, 16)  # pure hex

    def test_stable_across_hash_seeds(self):
        """The digest must not depend on ``PYTHONHASHSEED``.

        Python randomizes ``hash`` (and hence set/dict iteration details)
        per process; a fingerprint built on it would differ between the
        processes of a parallel matrix run.
        """
        program = (
            "from repro.cache.fingerprint import state_fingerprint\n"
            "print(state_fingerprint("
            "{'x': 1, 'name': 'Idle', 'q': (1, 2), 's': {'a', 'b', 'c'}}))"
        )
        digests = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", env.get("PYTHONPATH", "")])
            )
            output = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                check=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            ).stdout.strip()
            digests.add(output)
        assert len(digests) == 1


class TestModelStateIntegration:
    def test_fingerprint_cached_and_stable(self):
        state = ModelState({"x": 1, "y": (2, 3)})
        first = state.fingerprint()
        assert state.fingerprint() == first
        assert first == state_fingerprint({"y": (2, 3), "x": 1})

    def test_equal_states_share_fingerprint(self):
        a = ModelState({"x": 1, "y": 2})
        b = ModelState({"y": 2, "x": 1})
        assert a == b
        assert a.fingerprint() == b.fingerprint()

    def test_distinct_states_differ(self):
        assert ModelState({"x": 1}).fingerprint() != ModelState({"x": 2}).fingerprint()
