"""Tests for the bounded LRU cache and its traffic counters."""

import pytest

from repro.cache.lru import LRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.evictions == 0

    def test_get_default(self):
        cache = LRUCache(4)
        sentinel = object()
        assert cache.get("missing", sentinel) is sentinel

    def test_put_refreshes_value(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1

    def test_contains_and_iter_do_not_count(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache
        assert list(cache) == ["a"]
        assert cache.hits == 0 and cache.misses == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            LRUCache(-1)


class TestEviction:
    def test_oldest_evicted_first(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # now "b" is the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_size_never_exceeds_capacity(self):
        cache = LRUCache(3)
        for index in range(50):
            cache.put(index, index)
            assert len(cache) <= 3
        assert cache.evictions == 47


class TestDisabled:
    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert "a" not in cache
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.misses == 1 and cache.evictions == 0


class TestStatsAndClear:
    def test_stats_dict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0, "size": 1}

    def test_clear_preserves_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
