"""Tests for the per-model SolveCache bundle."""

from repro.cache import CACHEABLE_UNSAT_STAGES, SolveCache


class TestEncodingCache:
    def test_factory_called_once_per_fingerprint(self):
        cache = SolveCache("M")
        built = []

        def factory():
            built.append(1)
            return object()

        first = cache.encoding("fp1", factory)
        second = cache.encoding("fp1", factory)
        assert first is second
        assert len(built) == 1
        assert cache.encoding("fp2", factory) is not first
        assert len(built) == 2

    def test_zero_capacity_always_rebuilds(self):
        cache = SolveCache("M", encoding_capacity=0)
        built = []

        def factory():
            built.append(1)
            return object()

        cache.encoding("fp1", factory)
        cache.encoding("fp1", factory)
        assert len(built) == 2
        assert cache.stats()["encoding_hits"] == 0

    def test_bounded_capacity_evicts(self):
        cache = SolveCache("M", encoding_capacity=2)
        for index in range(4):
            cache.encoding(f"fp{index}", object)
        stats = cache.stats()
        assert stats["encoding_evictions"] == 2
        assert stats["encoding_misses"] == 4


class TestVerdictCache:
    def test_unknown_pair_is_none(self):
        cache = SolveCache("M")
        assert cache.dead_verdict("fp", ("branch", 3)) is None
        assert cache.stats()["verdict_hits"] == 0

    def test_mark_and_hit_carries_failure_flag(self):
        cache = SolveCache("M")
        cache.mark_dead("fp", ("branch", 3), counts_failure=True)
        cache.mark_dead("fp", ("branch", 4), counts_failure=False)
        assert cache.dead_verdict("fp", ("branch", 3)) is True
        assert cache.dead_verdict("fp", ("branch", 4)) is False
        assert cache.stats()["verdict_hits"] == 2
        assert cache.verdict_entries == 2

    def test_pairs_are_independent(self):
        cache = SolveCache("M")
        cache.mark_dead("fp", ("branch", 3), counts_failure=True)
        assert cache.dead_verdict("fp", ("branch", 4)) is None
        assert cache.dead_verdict("other", ("branch", 3)) is None

    def test_disabled_verdicts_record_nothing(self):
        cache = SolveCache("M", verdicts=False)
        cache.mark_dead("fp", ("branch", 3), counts_failure=True)
        assert cache.dead_verdict("fp", ("branch", 3)) is None
        assert cache.verdict_entries == 0

    def test_cacheable_stages_are_the_draw_free_ones(self):
        # The soundness argument (DESIGN.md) only covers stages that run
        # before any randomized sampling; "split" must never appear here.
        assert CACHEABLE_UNSAT_STAGES == ("fold", "contract")


class TestStatsAndClear:
    def test_stats_key_set(self):
        cache = SolveCache("M")
        assert sorted(cache.stats()) == [
            "compiled_evictions",
            "compiled_hits",
            "compiled_misses",
            "encoding_evictions",
            "encoding_hits",
            "encoding_misses",
            "verdict_entries",
            "verdict_hits",
        ]

    def test_clear_drops_entries(self):
        cache = SolveCache("M")
        cache.encoding("fp", object)
        cache.mark_dead("fp", ("branch", 1), counts_failure=True)
        cache.clear()
        assert cache.verdict_entries == 0
        built = []
        cache.encoding("fp", lambda: built.append(1))
        assert built == [1]
