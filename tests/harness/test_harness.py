"""Tests for the experiment harness: runner, tables, figures, ablations."""

import pytest

from repro import api
from repro.core.result import GenerationResult
from repro.core.testcase import TestSuite
from repro.coverage.collector import CoverageSummary
from repro.harness import (
    MatrixConfig,
    average_improvements,
    dead_logic_waste,
    figure3,
    figure4_model,
    hybrid_warmup,
    improvement,
    library_vs_fresh,
    run_table1,
    table1,
    table2,
    table3,
    timeline_series,
)
from repro.harness.runner import ToolOutcome
from repro.models import get_benchmark
from repro.models.registry import BenchmarkModel

from tests.conftest import build_counter_model

#: A tiny benchmark wrapper around the fixture model for fast harness runs.
TINY = BenchmarkModel("Tiny", "counter fixture", build_counter_model, 0, 0)


class TestRunner:
    @pytest.mark.parametrize("tool", ["STCG", "SimCoTest", "SLDV"])
    def test_generate_each_tool(self, tool):
        result = api.generate(
            TINY, tool=tool, budget_s=3.0, seed=0, sldv_max_depth=3
        )
        assert isinstance(result, GenerationResult)
        assert result.tool == tool
        assert 0.0 <= result.decision <= 1.0

    def test_unknown_tool(self):
        from repro.errors import HarnessError

        with pytest.raises(HarnessError):
            api.generate(TINY, tool="MagicTool", budget_s=1.0, seed=0)

    def test_run_experiment_structure(self):
        messages = []
        experiment = api.run_experiment(
            models=[TINY], tools=("STCG", "SimCoTest"), budget_s=2.0,
            repetitions=2, sldv_repetitions=1, progress=messages.append,
        )
        results = experiment.outcomes
        assert set(results) == {"Tiny"}
        assert set(results["Tiny"]) == {"STCG", "SimCoTest"}
        assert len(results["Tiny"]["STCG"].runs) == 2
        assert len(messages) == 4

    def test_matrix_config_still_validates(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            MatrixConfig(budget_s=0.0)
        with pytest.raises(ConfigError):
            MatrixConfig(repetitions=0)

    def test_outcome_averages(self):
        outcome = ToolOutcome("T", "M")

        def fake(decision):
            return GenerationResult(
                "T", "M",
                CoverageSummary(decision, 0.5, 0.25, 0, 0),
                TestSuite("M", []),
            )

        outcome.runs = [fake(0.4), fake(0.8)]
        assert outcome.decision == pytest.approx(0.6)
        assert outcome.representative.decision == 0.8

    def test_improvement_math(self):
        assert improvement(1.0, 0.5) == pytest.approx(1.0)
        assert improvement(0.5, 0.5) == pytest.approx(0.0)
        assert improvement(0.5, 0.0) is None

    def test_average_improvements(self):
        def outcome(tool, d):
            o = ToolOutcome(tool, "M")
            o.runs = [
                GenerationResult(
                    tool, "M", CoverageSummary(d, d, d, 0, 0),
                    TestSuite("M", []),
                )
            ]
            return o

        results = {
            "M": {"STCG": outcome("STCG", 1.0), "SLDV": outcome("SLDV", 0.5)}
        }
        gains = average_improvements(results, "SLDV")
        assert gains["decision"] == pytest.approx(1.0)


class TestTables:
    def test_table1_reaches_full_coverage(self):
        rows, generator = run_table1(budget_s=10.0, seed=0)
        assert rows
        assert generator.collector.decision_coverage() == 1.0
        # Bitmaps are always 13 wide.
        assert all(len(r.coverage_bitmap) == 13 for r in rows)
        # The final bitmap is fully covered.
        assert rows[-1].coverage_bitmap == "I" * 13

    def test_table1_renders(self):
        text = table1(budget_s=10.0, seed=0)
        assert "Step" in text
        assert "B1" in text
        assert "decision=100%" in text

    def test_table1_shows_failures_on_shallow_states(self):
        text = table1(budget_s=10.0, seed=0)
        assert "but failed" in text  # the paper's step-6/7 style rows

    def test_table2_lists_all_models(self):
        text = table2([get_benchmark("AFC")])
        assert "AFC" in text
        assert "Engine air-fuel control system" in text
        assert "#Branch(paper)" in text

    def test_table3_renders_with_paper_reference(self):
        experiment = api.run_experiment(
            models=[TINY], tools=("STCG", "SimCoTest", "SLDV"),
            budget_s=2.0, repetitions=1,
        )
        text = table3(experiment.outcomes)
        assert "Tiny" in text
        assert "STCG" in text
        assert "Average improvement" in text


class TestFigures:
    def test_figure3_sections(self):
        text = figure3(budget_s=8.0, seed=0)
        assert "(a) model branches" in text
        assert "(b) explored state tree" in text
        assert "B1" in text and "S0" in text

    def test_timeline_series_step_function(self):
        result = api.generate(TINY, tool="STCG", budget_s=2.0, seed=0)
        series = timeline_series(result, budget_s=2.0, points=10)
        assert len(series) == 11
        values = [v for _, v in series]
        assert values == sorted(values)  # cumulative coverage

    def test_figure4_plot_shape(self):
        results = {
            tool: api.generate(
                TINY, tool=tool, budget_s=2.0, seed=0, sldv_max_depth=2
            )
            for tool in ("STCG", "SimCoTest", "SLDV")
        }
        text = figure4_model(results, budget_s=2.0)
        assert "100% |" in text
        assert "legend" in text


class TestAblations:
    def test_dead_logic_waste_variants(self):
        runs = dead_logic_waste(TINY, budget_s=2.0)
        assert [r.variant for r in runs] == [
            "skip-constant-false", "always-invoke-solver",
        ]
        assert runs[1].stat("const_false_skips") == 0

    def test_hybrid_warmup_variants(self):
        runs = hybrid_warmup(TINY, budget_s=2.0)
        assert runs[1].result.stats["warmup_steps"] >= 0

    def test_library_vs_fresh_variants(self):
        runs = library_vs_fresh(TINY, budget_s=2.0)
        assert len(runs) == 3

    def test_render(self):
        from repro.harness.ablation import render

        runs = dead_logic_waste(TINY, budget_s=1.0)
        text = render(runs)
        assert "variant" in text
        assert "skip-constant-false" in text
