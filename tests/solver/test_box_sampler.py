"""Tests for variable boxes and the candidate sampler."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr.ast import Var
from repro.expr.types import ArrayType, BOOL, INT, REAL
from repro.solver.box import Box, DEFAULT_HI, DEFAULT_LO
from repro.solver.interval import Interval
from repro.solver.sampler import clamp_to_domain, corner_points, sample_point

I = Var("i", INT, -10, 10)
R = Var("r", REAL, 0.0, 1.0)
B = Var("b", BOOL)
U = Var("u", REAL)  # unbounded


class TestBox:
    def test_initial_domains_from_declarations(self):
        box = Box([I, R, B])
        assert box.domain("i") == Interval(-10.0, 10.0)
        assert box.domain("r") == Interval(0.0, 1.0)
        assert box.domain("b") == Interval(0.0, 1.0)

    def test_unbounded_gets_defaults(self):
        box = Box([U])
        assert box.domain("u") == Interval(DEFAULT_LO, DEFAULT_HI)

    def test_duplicates_ignored(self):
        box = Box([I, I])
        assert len(box) == 1

    def test_narrow_intersects(self):
        box = Box([I])
        assert box.narrow("i", Interval(0.0, 100.0))
        assert box.domain("i") == Interval(0.0, 10.0)

    def test_narrow_rounds_integers(self):
        box = Box([I])
        box.narrow("i", Interval(0.3, 4.7))
        assert box.domain("i") == Interval(1.0, 4.0)

    def test_narrow_reports_no_change(self):
        box = Box([I])
        assert not box.narrow("i", Interval(-100.0, 100.0))

    def test_empty_detection(self):
        box = Box([I])
        box.narrow("i", Interval.empty())
        assert box.is_empty

    def test_array_variable_rejected(self):
        with pytest.raises(ValueError):
            Box([Var("a", ArrayType(INT, 2))])

    def test_total_width(self):
        box = Box([I, R])
        assert box.total_width() == 21.0


class TestClamp:
    def test_clamp_inside(self):
        assert clamp_to_domain(0.5, Interval(0.0, 1.0), False) == 0.5

    def test_clamp_below_above(self):
        assert clamp_to_domain(-5.0, Interval(0.0, 1.0), False) == 0.0
        assert clamp_to_domain(5.0, Interval(0.0, 1.0), False) == 1.0

    def test_clamp_int_rounds(self):
        assert clamp_to_domain(2.6, Interval(0.0, 10.0), True) == 3.0


class TestSampler:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_samples_in_domain(self, seed):
        box = Box([I, R, B])
        env = sample_point(box, random.Random(seed))
        assert -10 <= env["i"] <= 10
        assert isinstance(env["i"], int)
        assert 0.0 <= env["r"] <= 1.0
        assert isinstance(env["b"], bool)

    def test_corner_points_cover_extremes(self):
        box = Box([I])
        candidates = corner_points(box)
        values = {c["i"] for c in candidates}
        assert -10 in values
        assert 10 in values
        assert 0 in values

    def test_corner_points_typed(self):
        box = Box([I, R, B])
        for candidate in corner_points(box):
            assert isinstance(candidate["i"], int)
            assert isinstance(candidate["r"], float)
            assert isinstance(candidate["b"], bool)

    def test_sampler_diverse(self):
        box = Box([I])
        rng = random.Random(0)
        values = {sample_point(box, rng)["i"] for _ in range(60)}
        assert len(values) >= 5
