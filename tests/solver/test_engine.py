"""Tests for the solver engine pipeline and the AVM search."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.evaluator import evaluate
from repro.expr.types import BOOL, INT, REAL
from repro.solver.avm import AvmSearch
from repro.solver.box import Box
from repro.solver.engine import SolverConfig, SolverEngine, Status

I = Var("i", INT, -100, 100)
J = Var("j", INT, -100, 100)
R = Var("r", REAL, -50.0, 50.0)
B = Var("b", BOOL)

ALL_VARS = [I, J, R, B]


@pytest.fixture
def engine():
    return SolverEngine(SolverConfig(seed=99))


class TestEngineStatuses:
    def test_constant_true(self, engine):
        result = engine.solve(x.lift(True), ALL_VARS)
        assert result.status is Status.SAT
        assert set(result.model) == {"i", "j", "r", "b"}

    def test_constant_false(self, engine):
        result = engine.solve(x.lift(False), ALL_VARS)
        assert result.status is Status.UNSAT

    def test_contraction_unsat(self, engine):
        constraint = x.land(x.gt(I, 50), x.lt(I, -50))
        result = engine.solve(constraint, ALL_VARS)
        assert result.status is Status.UNSAT
        assert result.stats.stage == "contract"

    def test_non_boolean_rejected(self, engine):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            engine.solve(I, ALL_VARS)


class TestEngineSolves:
    @pytest.mark.parametrize(
        "constraint",
        [
            x.gt(I, 95),
            x.eq(I, -73),
            x.eq(x.add(x.mul(I, 3), 7), 52),
            x.land(x.gt(I, 10), x.lt(J, -10)),
            x.lor(x.eq(I, 88), x.eq(J, -88)),
            x.land(B, x.ge(R, 49.0)),
            x.eq(x.absolute(I), 64),
            x.eq(x.mod(I, 10), 7),
            x.land(x.eq(I, J), x.gt(I, 42)),
            x.eq(x.minimum(I, J), 33),
            x.ite(B, x.eq(I, 5), x.eq(I, -5)),
        ],
    )
    def test_sat_model_verifies(self, engine, constraint):
        result = engine.solve(constraint, ALL_VARS)
        assert result.status is Status.SAT
        assert evaluate(constraint, result.model) is True

    def test_model_respects_declared_types(self, engine):
        result = engine.solve(x.gt(I, 0), ALL_VARS)
        assert isinstance(result.model["i"], int)
        assert isinstance(result.model["r"], float)
        assert isinstance(result.model["b"], bool)

    def test_model_within_domains(self, engine):
        result = engine.solve(x.gt(I, 0), ALL_VARS)
        assert -100 <= result.model["i"] <= 100
        assert -50.0 <= result.model["r"] <= 50.0

    def test_unconstrained_variables_resampled(self):
        """Don't-care inputs should vary across calls (library diversity)."""
        engine = SolverEngine(SolverConfig(seed=5))
        values = set()
        for _ in range(12):
            result = engine.solve(x.gt(I, 0), ALL_VARS)
            values.add(result.model["j"])
        assert len(values) > 3


class TestBudgets:
    def test_unknown_on_hopeless_needle(self):
        # i*i == -1 has no solution but the contractor cannot prove it;
        # the budget forces UNKNOWN rather than hanging.
        engine = SolverEngine(
            SolverConfig(max_samples=8, avm_evaluations=50, time_budget_s=0.2)
        )
        constraint = x.eq(x.mul(I, I), -1)
        result = engine.solve(constraint, [I])
        assert result.status in (Status.UNKNOWN, Status.UNSAT)

    def test_stats_populated(self, engine):
        result = engine.solve(x.eq(I, 5), ALL_VARS)
        assert result.stats.elapsed_s >= 0.0
        assert result.stats.stage != ""


class TestStageMetrics:
    """The engine-lifetime stage accounting behind ``repro report``."""

    CONSTRAINTS = [
        x.lift(True),                           # folds to a constant
        x.land(x.gt(I, 50), x.lt(I, -50)),      # contractor proves UNSAT
        x.gt(I, 95),                            # easy sample
        x.eq(x.add(x.mul(I, 3), 7), 52),        # needle: AVM territory
        x.lor(x.eq(I, 88), x.eq(J, -88)),       # disjunctive: split path
        x.eq(R, 13.25),
    ]

    def test_stage_times_cover_the_call(self):
        engine = SolverEngine(SolverConfig(seed=99))
        result = engine.solve(x.eq(I, -73), ALL_VARS)
        assert result.stats.stage_times
        total = sum(result.stats.stage_times.values())
        assert 0.0 <= total <= result.stats.elapsed_s + 0.05

    def test_fixed_seed_counters_sum_to_calls(self):
        engine = SolverEngine(SolverConfig(seed=99))
        results = [engine.solve(c, ALL_VARS) for c in self.CONSTRAINTS]
        metrics = engine.metrics
        assert metrics.calls == len(self.CONSTRAINTS)
        snap = metrics.as_dict()
        # Every call finishes in exactly one canonical stage...
        assert sum(s["finished"] for s in snap.values()) == metrics.calls
        # ...and every SAT verdict is exactly one stage's win.
        sat = sum(1 for r in results if r.status is Status.SAT)
        assert sum(s["wins"] for s in snap.values()) == sat
        assert metrics.by_status.get("sat", 0) == sat

    def test_winning_stage_matches_result_stage(self):
        from repro.obs.stages import canonical_stage

        for constraint in self.CONSTRAINTS:
            engine = SolverEngine(SolverConfig(seed=99))
            result = engine.solve(constraint, ALL_VARS)
            snap = engine.metrics.as_dict()
            terminal = canonical_stage(result.stats.stage)
            assert snap[terminal]["finished"] == 1
            expected_wins = 1 if result.status is Status.SAT else 0
            assert snap[terminal]["wins"] == expected_wins

    def test_attempts_count_stages_entered(self):
        engine = SolverEngine(SolverConfig(seed=99))
        result = engine.solve(x.eq(x.add(x.mul(I, 3), 7), 52), ALL_VARS)
        snap = engine.metrics.as_dict()
        # Each stage the call spent time in is one attempt.
        entered = set(result.stats.stage_times)
        assert set(snap) == entered
        assert all(snap[stage]["attempts"] == 1 for stage in entered)


class TestAvmDirect:
    def test_solves_equality_needle(self):
        box = Box([I, J])
        constraint = x.eq(x.add(I, J), 123)
        from repro.expr.distance import DistanceEvaluator
        from repro.expr.nnf import to_nnf

        dist = DistanceEvaluator(to_nnf(constraint))
        search = AvmSearch(dist.distance, box, random.Random(3), 3000)
        result = search.run({"i": 0, "j": 0})
        assert result.satisfied
        assert result.env["i"] + result.env["j"] == 123

    def test_boolean_flip(self):
        box = Box([B, I])
        constraint = x.land(B, x.eq(I, 0))
        from repro.expr.distance import DistanceEvaluator
        from repro.expr.nnf import to_nnf

        dist = DistanceEvaluator(to_nnf(constraint))
        search = AvmSearch(dist.distance, box, random.Random(3), 1000)
        result = search.run({"b": False, "i": 0})
        assert result.satisfied

    def test_budget_respected(self):
        box = Box([I])
        constraint = x.eq(x.mul(I, I), -1)  # unsatisfiable
        from repro.expr.distance import DistanceEvaluator
        from repro.expr.nnf import to_nnf

        dist = DistanceEvaluator(to_nnf(constraint))
        search = AvmSearch(dist.distance, box, random.Random(3), 100)
        result = search.run()
        assert not result.satisfied
        assert result.evaluations <= 120  # small overshoot allowed


# -- property: the engine never returns a wrong SAT --------------------------

_coef = st.integers(-5, 5)


@st.composite
def random_constraints(draw):
    terms = []
    for _ in range(draw(st.integers(1, 3))):
        a, b, c = draw(_coef), draw(_coef), draw(st.integers(-50, 50))
        lhs = x.add(x.mul(I, a), x.mul(J, b))
        op = draw(st.sampled_from([x.le, x.ge, x.eq, x.ne]))
        terms.append(op(lhs, c))
    combine = draw(st.sampled_from([x.conjoin, x.disjoin]))
    return combine(terms)


class TestEngineProperties:
    @given(constraint=random_constraints())
    @settings(max_examples=60, deadline=None)
    def test_sat_models_always_verify(self, constraint):
        engine = SolverEngine(SolverConfig(seed=1, time_budget_s=0.3))
        result = engine.solve(constraint, [I, J])
        if result.status is Status.SAT:
            assert evaluate(constraint, result.model) is True

    @given(constraint=random_constraints(), i=st.integers(-100, 100),
           j=st.integers(-100, 100))
    @settings(max_examples=60, deadline=None)
    def test_unsat_never_contradicted(self, constraint, i, j):
        engine = SolverEngine(SolverConfig(seed=1, time_budget_s=0.3))
        result = engine.solve(constraint, [I, J])
        if result.status is Status.UNSAT:
            assert evaluate(constraint, {"i": i, "j": j}) is False
