"""Tests for the one-step and unrolled symbolic encoders.

The central correctness property of the whole reproduction: *the symbolic
one-step encoding agrees with concrete execution* — for any state and any
input, a branch's recorded condition evaluates true exactly when concrete
simulation from that state takes the branch.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coverage import CoverageCollector
from repro.expr.evaluator import evaluate
from repro.model import Simulator
from repro.model.inputs import random_input
from repro.solver.encoder import OneStepEncoding, UnrolledEncoding
from repro.solver.engine import SolverConfig, SolverEngine, Status

from tests.conftest import build_counter_model, build_queue_model


def concrete_outcomes(compiled, state, inputs):
    """Decision outcomes taken when stepping concretely from ``state``."""
    simulator = Simulator(compiled, CoverageCollector(compiled.registry))
    simulator.set_state(state)
    result = simulator.step(inputs)
    return result.taken_outcomes


class TestEncodingDoesNotTouchState:
    """Encodings are cached and shared; the snapshot they were built from
    must never be aliased or mutated by construction."""

    def _walk_to_state(self, compiled, steps=3, seed=0):
        rng = random.Random(seed)
        simulator = Simulator(compiled, CoverageCollector(compiled.registry))
        for _ in range(steps):
            simulator.step(random_input(compiled.inports, rng))
        return simulator.get_state()

    @pytest.mark.parametrize("build", [build_counter_model, build_queue_model])
    def test_one_step_encoding_leaves_state_untouched(self, build):
        compiled = build()
        state = self._walk_to_state(compiled)
        before = state.values
        fingerprint_before = state.fingerprint()
        encoding = OneStepEncoding(compiled, state)
        assert state.values == before
        assert state.fingerprint() == fingerprint_before
        # The encoding's next-state map is its own dict, not the snapshot's.
        next_state = encoding.next_state_expressions()
        next_state["__poison__"] = object()
        assert "__poison__" not in state.values

    def test_unrolled_encoding_leaves_state_untouched(self):
        compiled = build_counter_model()
        state = self._walk_to_state(compiled)
        before = state.values
        UnrolledEncoding(compiled, depth=3, initial_state=state)
        assert state.values == before


class TestOneStepAgreement:
    def _check_agreement(self, compiled, state, inputs):
        encoding = OneStepEncoding(compiled, state)
        taken = concrete_outcomes(compiled, state, inputs)
        for decision_id, outcome in taken.items():
            branch = compiled.registry.decision(decision_id).branches[outcome]
            condition = encoding.branch_condition(branch)
            assert evaluate(condition, inputs) is True, (
                f"branch {branch.label} taken concretely but its symbolic "
                "condition is false"
            )
            # And the *other* outcomes' conditions must be false.
            for other in compiled.registry.decision(decision_id).branches:
                if other.outcome != outcome:
                    other_cond = encoding.branch_condition(other)
                    assert evaluate(other_cond, inputs) is False

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_counter_model(self, seed):
        compiled = build_counter_model()
        rng = random.Random(seed)
        simulator = Simulator(compiled, CoverageCollector(compiled.registry))
        # Walk a few random steps to reach a non-trivial state.
        for _ in range(rng.randint(0, 5)):
            simulator.step(random_input(compiled.inports, rng))
        state = simulator.get_state()
        inputs = random_input(compiled.inports, rng)
        self._check_agreement(compiled, state, inputs)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_queue_model(self, seed):
        compiled = build_queue_model()
        rng = random.Random(seed)
        simulator = Simulator(compiled, CoverageCollector(compiled.registry))
        for _ in range(rng.randint(0, 8)):
            simulator.step(random_input(compiled.inports, rng))
        state = simulator.get_state()
        inputs = random_input(compiled.inports, rng)
        self._check_agreement(compiled, state, inputs)


class TestPathConstraints:
    def test_child_constraint_includes_parent(self, queue_model):
        compiled = queue_model
        simulator = Simulator(compiled, CoverageCollector(compiled.registry))
        encoding = OneStepEncoding(compiled, simulator.get_state())
        deep = [b for b in compiled.registry.branches if b.depth > 0]
        assert deep, "queue model should have nested branches"
        branch = deep[0]
        constraint = encoding.path_constraint(branch)
        # A model of the path constraint must also satisfy the parent.
        engine = SolverEngine(SolverConfig(seed=0))
        result = engine.solve(constraint, encoding.variables)
        if result.status is Status.SAT:
            parent_cond = encoding.branch_condition(branch.parent)
            assert evaluate(parent_cond, result.model) is True

    def test_solved_input_covers_branch_concretely(self, queue_model):
        """End-to-end: solve a branch, execute, observe it covered."""
        compiled = queue_model
        collector = CoverageCollector(compiled.registry)
        simulator = Simulator(compiled, collector)
        state = simulator.get_state()
        encoding = OneStepEncoding(compiled, state)
        engine = SolverEngine(SolverConfig(seed=0))
        for branch in compiled.registry.branches_by_depth():
            constraint = encoding.path_constraint(branch)
            result = engine.solve(constraint, encoding.variables)
            if result.status is not Status.SAT:
                continue
            simulator.set_state(state)
            step = simulator.step(result.model)
            taken = step.taken_outcomes.get(branch.decision.decision_id)
            assert taken == branch.outcome


class TestStateAwareness:
    def test_unreachable_branch_folds_false(self, queue_model):
        """From the empty-queue state, pop-success folds to constant false."""
        compiled = queue_model
        simulator = Simulator(compiled, CoverageCollector(compiled.registry))
        encoding = OneStepEncoding(compiled, simulator.get_state())
        pop_ok = next(
            b for b in compiled.registry.branches
            if "Switch" in b.label and b.depth > 0 and "o1" in b.label
            and b.label.endswith("false")
        )
        condition = encoding.branch_condition(pop_ok)
        # Empty queue: the miss condition is constantly true, so the
        # "found" outcome (control false) is constantly false.
        assert condition.is_const

    def test_becomes_solvable_after_push(self, queue_model):
        compiled = queue_model
        simulator = Simulator(compiled, CoverageCollector(compiled.registry))
        simulator.step({"op": 1, "key": 9})
        encoding = OneStepEncoding(compiled, simulator.get_state())
        # Now a pop with key 9 succeeds: find the branch and solve it.
        engine = SolverEngine(SolverConfig(seed=0))
        matched_keys = []
        for branch in compiled.registry.branches:
            if branch.depth == 0:
                continue
            constraint = encoding.path_constraint(branch)
            result = engine.solve(constraint, encoding.variables)
            if result.status is Status.SAT and result.model.get("op") == 2:
                matched_keys.append(result.model["key"])
        # The pop-success branch forces the key to match the pushed entry.
        assert 9 in matched_keys


class TestUnrolledEncoding:
    def test_depth_validation(self, counter_model):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            UnrolledEncoding(counter_model, 0)

    def test_variables_per_step(self, counter_model):
        encoding = UnrolledEncoding(counter_model, 3)
        names = {v.name for v in encoding.variables}
        assert "tick@0" in names and "amount@2" in names
        assert len(encoding.variables) == 6

    def test_decode_sequence(self, counter_model):
        encoding = UnrolledEncoding(counter_model, 2)
        model = {
            "tick@0": True, "amount@0": 5, "tick@1": False, "amount@1": 2,
        }
        sequence = encoding.decode_sequence(model)
        assert sequence == [
            {"tick": True, "amount": 5},
            {"tick": False, "amount": 2},
        ]

    def test_multi_step_needle_solvable(self, counter_model):
        """count > 15 requires two max-amount ticks: a 2-step constraint."""
        compiled = counter_model
        encoding = UnrolledEncoding(compiled, 2)
        high_branch = next(
            b for b in compiled.registry.branches
            if b.label.endswith("level:true")
        )
        constraint = encoding.path_constraint(high_branch, 1)
        engine = SolverEngine(
            SolverConfig(seed=0, max_samples=200, avm_evaluations=4000,
                         time_budget_s=3.0)
        )
        result = engine.solve(constraint, encoding.variables)
        assert result.status is Status.SAT
        # Execute the decoded sequence and confirm the branch is covered.
        collector = CoverageCollector(compiled.registry)
        simulator = Simulator(compiled, collector)
        for step_inputs in encoding.decode_sequence(result.model):
            simulator.step(step_inputs)
        assert collector.is_branch_covered(high_branch)


class TestObligationConstraints:
    def test_unreachable_point_gives_false(self, queue_model):
        compiled = queue_model
        simulator = Simulator(compiled, CoverageCollector(compiled.registry))
        encoding = OneStepEncoding(compiled, simulator.get_state())
        from repro.coverage.collector import ConditionObligation

        # Point ids beyond any recorded: should yield constant false.
        bogus = ConditionObligation(10_000, 0, True, False)
        constraint = encoding.obligation_constraint(bogus)
        assert constraint.is_const and constraint.const_value() is False

    def test_value_obligation_solvable_and_observed(self, queue_model):
        compiled = queue_model
        collector = CoverageCollector(compiled.registry)
        simulator = Simulator(compiled, collector)
        simulator.step({"op": 1, "key": 3})  # one entry in the queue
        state = simulator.get_state()
        encoding = OneStepEncoding(compiled, state)
        engine = SolverEngine(SolverConfig(seed=0))
        for obligation in collector.unsatisfied_condition_obligations():
            constraint = encoding.obligation_constraint(obligation)
            result = engine.solve(constraint, encoding.variables)
            if result.status is not Status.SAT:
                continue
            simulator.set_state(state)
            simulator.step(result.model)
            assert collector.is_obligation_satisfied(obligation)
            break
        else:
            pytest.skip("no solvable obligation from this state")
