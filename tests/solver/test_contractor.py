"""Tests for HC4 contraction: narrowing power and soundness."""

from hypothesis import given, settings, strategies as st

from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.evaluator import evaluate
from repro.expr.types import BOOL, INT, REAL
from repro.solver.box import Box
from repro.solver.contractor import Contractor

I = Var("i", INT, -100, 100)
J = Var("j", INT, -100, 100)
R = Var("r", REAL, -100.0, 100.0)
B = Var("b", BOOL)


def contract(constraint, variables):
    box = Box(variables)
    feasible = Contractor(constraint).contract(box)
    return feasible, box


class TestNarrowing:
    def test_upper_bound_from_lt(self):
        feasible, box = contract(x.lt(I, 10), [I])
        assert feasible
        assert box.domain("i").hi <= 10.0

    def test_lower_bound_from_ge(self):
        feasible, box = contract(x.ge(I, 42), [I])
        assert feasible
        assert box.domain("i").lo >= 42.0

    def test_equality_pins_to_point(self):
        feasible, box = contract(x.eq(I, 7), [I])
        assert feasible
        assert box.domain("i") .is_point
        assert box.domain("i").lo == 7.0

    def test_linear_equation_solved_by_contraction(self):
        # 3 * i + 7 == 52  =>  i == 15
        constraint = x.eq(x.add(x.mul(I, 3), 7), 52)
        feasible, box = contract(constraint, [I])
        assert feasible
        assert box.domain("i").is_point
        assert box.domain("i").lo == 15.0

    def test_conjunction_narrows_both_sides(self):
        constraint = x.land(x.ge(I, 5), x.le(I, 9))
        feasible, box = contract(constraint, [I])
        assert feasible
        assert box.domain("i").lo == 5.0
        assert box.domain("i").hi == 9.0

    def test_two_variable_relation(self):
        # i <= j narrows nothing drastic but stays feasible.
        feasible, box = contract(x.le(I, J), [I, J])
        assert feasible
        assert not box.is_empty

    def test_integer_rounding(self):
        constraint = x.land(x.gt(I, 3), x.lt(I, 5))
        feasible, box = contract(constraint, [I])
        assert feasible
        # Only integer 4 remains... at minimum the bounds round to ints.
        dom = box.domain("i")
        assert dom.lo >= 3.0 and dom.hi <= 5.0

    def test_abs_contraction(self):
        constraint = x.le(x.absolute(I), 5)
        feasible, box = contract(constraint, [I])
        assert feasible
        assert box.domain("i").lo >= -5.0
        assert box.domain("i").hi <= 5.0


class TestUnsatProofs:
    def test_contradictory_bounds(self):
        feasible, box = contract(x.land(x.gt(I, 50), x.lt(I, 10)), [I])
        assert not feasible
        assert box.is_empty

    def test_out_of_domain_equality(self):
        feasible, _ = contract(x.eq(I, 1000), [I])
        assert not feasible

    def test_constant_false(self):
        feasible, _ = contract(x.lift(False), [I])
        assert not feasible

    def test_no_integer_in_range(self):
        constraint = x.land(x.gt(I, 3), x.lt(I, 4))
        feasible, _ = contract(constraint, [I])
        assert not feasible

    def test_disequality_of_pinned_points(self):
        k = Var("k", INT, 5, 5)
        feasible, _ = contract(x.ne(k, 5), [k])
        assert not feasible


class TestConservativeCases:
    def test_or_does_not_overnarrow(self):
        constraint = x.lor(x.eq(I, -50), x.eq(I, 50))
        feasible, box = contract(constraint, [I])
        assert feasible
        # Both solutions must remain inside the box.
        assert box.domain("i").contains(-50.0)
        assert box.domain("i").contains(50.0)

    def test_ite_with_unknown_condition(self):
        constraint = x.ge(x.ite(B, I, J), 0)
        feasible, box = contract(constraint, [I, J, B])
        assert feasible
        # i = 100, b = True is a solution and must survive.
        assert box.domain("i").contains(100.0)

    def test_boolean_variable_narrowed(self):
        feasible, box = contract(B, [B])
        assert feasible
        assert box.domain("b").lo == 1.0


# -- soundness property: contraction never removes a solution -----------------

_small_int = st.integers(-20, 20)


@st.composite
def linear_constraints(draw):
    """Random conjunctions of linear (in)equalities over i, j."""
    terms = []
    for _ in range(draw(st.integers(1, 3))):
        a = draw(_small_int)
        b = draw(_small_int)
        c = draw(_small_int)
        lhs = x.add(x.mul(I, a), x.mul(J, b))
        op = draw(st.sampled_from([x.le, x.ge, x.eq, x.lt, x.gt]))
        terms.append(op(lhs, c))
    return x.conjoin(terms)


class TestContractionSoundness:
    @given(constraint=linear_constraints(), i=_small_int, j=_small_int)
    @settings(max_examples=200, deadline=None)
    def test_solutions_survive_contraction(self, constraint, i, j):
        env = {"i": i, "j": j}
        box = Box([I, J])
        feasible = Contractor(constraint).contract(box)
        if evaluate(constraint, env):
            # (i, j) is a solution: the contractor must keep it.
            assert feasible
            assert box.domain("i").contains(float(i))
            assert box.domain("j").contains(float(j))
