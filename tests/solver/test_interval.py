"""Tests and soundness properties for interval arithmetic."""

import math

from hypothesis import given, strategies as st

from repro.solver.interval import (
    BOOL_FALSE,
    BOOL_TRUE,
    BOOL_UNKNOWN,
    Interval,
)


class TestConstruction:
    def test_point(self):
        p = Interval.point(3.0)
        assert p.is_point
        assert p.contains(3.0)

    def test_empty(self):
        assert Interval.empty().is_empty
        assert not Interval.empty().contains(0.0)

    def test_top_contains_everything(self):
        top = Interval.top()
        for v in (-1e18, 0.0, 1e18):
            assert top.contains(v)

    def test_width(self):
        assert Interval(1.0, 4.0).width == 3.0
        assert Interval.empty().width == 0.0


class TestSetOps:
    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(5, 6)) == Interval(0, 6)

    def test_hull_with_empty(self):
        a = Interval(0, 1)
        assert Interval.empty().hull(a) == a
        assert a.hull(Interval.empty()) == a

    def test_round_to_int(self):
        assert Interval(1.2, 3.8).round_to_int() == Interval(2.0, 3.0)

    def test_round_to_int_empty_when_no_integers(self):
        assert Interval(1.2, 1.8).round_to_int().is_empty


class TestBooleanLattice:
    def test_true(self):
        assert BOOL_TRUE.definitely_true
        assert not BOOL_TRUE.definitely_false

    def test_false(self):
        assert BOOL_FALSE.definitely_false
        assert not BOOL_FALSE.definitely_true

    def test_unknown(self):
        assert not BOOL_UNKNOWN.definitely_true
        assert not BOOL_UNKNOWN.definitely_false


intervals = st.tuples(
    st.floats(-100, 100, allow_nan=False), st.floats(0, 50, allow_nan=False)
).map(lambda t: Interval(t[0], t[0] + t[1]))

values = st.floats(0.0, 1.0, allow_nan=False)


def _pick(interval: Interval, fraction: float) -> float:
    return interval.lo + (interval.hi - interval.lo) * fraction


class TestArithmeticSoundness:
    """f(x, y) must lie inside F(X, Y) for x in X, y in Y."""

    @given(intervals, intervals, values, values)
    def test_add(self, X, Y, fx, fy):
        x, y = _pick(X, fx), _pick(Y, fy)
        assert (X + Y).contains(x + y)

    @given(intervals, intervals, values, values)
    def test_sub(self, X, Y, fx, fy):
        x, y = _pick(X, fx), _pick(Y, fy)
        assert (X - Y).contains(x - y)

    @given(intervals, intervals, values, values)
    def test_mul(self, X, Y, fx, fy):
        x, y = _pick(X, fx), _pick(Y, fy)
        result = (X * Y)
        assert result.lo <= x * y <= result.hi or math.isclose(
            x * y, result.lo, abs_tol=1e-6
        ) or math.isclose(x * y, result.hi, abs_tol=1e-6)

    @given(intervals, intervals, values, values)
    def test_divide(self, X, Y, fx, fy):
        x, y = _pick(X, fx), _pick(Y, fy)
        if y != 0:
            assert X.divide(Y).contains(x / y)

    @given(intervals, intervals, values, values)
    def test_min_max(self, X, Y, fx, fy):
        x, y = _pick(X, fx), _pick(Y, fy)
        assert X.minimum(Y).contains(min(x, y))
        assert X.maximum(Y).contains(max(x, y))

    @given(intervals, values)
    def test_abs(self, X, fx):
        x = _pick(X, fx)
        assert X.absolute().contains(abs(x))

    @given(intervals, values)
    def test_neg(self, X, fx):
        x = _pick(X, fx)
        assert (-X).contains(-x)

    @given(intervals, values)
    def test_floor_ceil_trunc(self, X, fx):
        x = _pick(X, fx)
        assert X.floor().contains(math.floor(x))
        assert X.ceil().contains(math.ceil(x))
        assert X.trunc().contains(float(math.trunc(x)))


class TestDivisionByZeroStraddle:
    def test_straddling_divisor_gives_top(self):
        result = Interval(1, 2).divide(Interval(-1, 1))
        assert result.lo == -math.inf
        assert result.hi == math.inf


class TestEmptyPropagation:
    def test_ops_with_empty(self):
        e = Interval.empty()
        a = Interval(0, 1)
        assert (e + a).is_empty
        assert (a - e).is_empty
        assert (e * a).is_empty
        assert a.minimum(e).is_empty
        assert e.absolute().is_empty
