"""Tests for disjunction splitting and its engine integration."""

from hypothesis import given, settings, strategies as st

from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.evaluator import evaluate
from repro.expr.nnf import to_nnf
from repro.expr.types import INT
from repro.solver.engine import SolverConfig, SolverEngine, Status
from repro.solver.splitter import MAX_CASES, split_cases

I = Var("i", INT, -100, 100)
J = Var("j", INT, -100, 100)


class TestSplitCases:
    def test_atom_not_split(self):
        assert split_cases(x.eq(I, 5)) == [x.eq(I, 5)]

    def test_top_level_or(self):
        cases = split_cases(x.lor(x.eq(I, 1), x.eq(I, 2)))
        assert len(cases) == 2

    def test_nested_or_under_and_distributes(self):
        constraint = x.land(x.eq(J, 7), x.lor(x.eq(I, 1), x.eq(I, 2)))
        cases = split_cases(constraint)
        assert len(cases) == 2
        # Each case carries the conjunct.
        for case in cases:
            assert evaluate(case, {"i": 1, "j": 7}) in (True, False)

    def test_cases_cover_original(self):
        constraint = to_nnf(
            x.lor(x.land(x.eq(I, 3), x.gt(J, 0)), x.lt(J, -50))
        )
        cases = split_cases(constraint)
        for i in (-60, 0, 3):
            for j in (-60, 0, 10):
                env = {"i": i, "j": j}
                original = evaluate(constraint, env)
                any_case = any(evaluate(c, env) for c in cases)
                assert original == any_case

    def test_budget_prevents_explosion(self):
        # (a1|a2) & (b1|b2) & (c1|c2) & (d1|d2) & (e1|e2) -> 32 cases > 16.
        terms = []
        for offset in range(5):
            terms.append(
                x.lor(x.eq(I, offset), x.eq(J, offset))
            )
        constraint = x.conjoin(terms)
        cases = split_cases(constraint)
        assert len(cases) == 1  # refused to split

    def test_max_cases_respected(self):
        disjuncts = x.disjoin([x.eq(I, k) for k in range(MAX_CASES)])
        assert len(split_cases(disjuncts)) == MAX_CASES
        too_many = x.disjoin([x.eq(I, k) for k in range(MAX_CASES + 1)])
        assert len(split_cases(too_many)) == 1


class TestEngineSplitStage:
    def test_needle_disjunct_found(self):
        """Two distant equality needles: split + contraction pins each."""
        engine = SolverEngine(SolverConfig(seed=0, avm_evaluations=0))
        constraint = x.lor(
            x.land(x.eq(I, 77), x.eq(J, -13)),
            x.land(x.eq(I, -77), x.eq(J, 13)),
        )
        result = engine.solve(constraint, [I, J])
        assert result.status is Status.SAT
        assert evaluate(constraint, result.model) is True

    def test_all_cases_unsat_proved(self):
        engine = SolverEngine(SolverConfig(seed=0))
        constraint = x.lor(
            x.land(x.eq(I, 500), x.gt(J, 0)),   # i out of domain
            x.land(x.gt(J, 10), x.lt(J, 5)),    # empty interval
        )
        result = engine.solve(constraint, [I, J])
        assert result.status is Status.UNSAT

    @given(
        a=st.integers(-90, 90), b=st.integers(-90, 90),
        c=st.integers(-90, 90),
    )
    @settings(max_examples=40, deadline=None)
    def test_three_way_needles_always_solved(self, a, b, c):
        engine = SolverEngine(SolverConfig(seed=0))
        constraint = x.disjoin([x.eq(I, a), x.eq(I, b), x.eq(I, c)])
        result = engine.solve(constraint, [I, J])
        assert result.status is Status.SAT
        assert result.model["i"] in (a, b, c)
