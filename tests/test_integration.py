"""End-to-end integration tests across the whole stack.

These are the "does the reproduction actually hold" checks: STCG reaches
high coverage on real benchmark models within small budgets, beats the
random baseline on state-heavy models, and its suites replay faithfully.
"""

import pytest

from repro.baselines import SimCoTestConfig, SimCoTestGenerator
from repro.core import StcgConfig, StcgGenerator
from repro.models import get_benchmark


def run_stcg(name, budget_s, seed=0):
    compiled = get_benchmark(name).build()
    generator = StcgGenerator(compiled, StcgConfig(budget_s=budget_s, seed=seed))
    return generator, generator.run()


class TestStcgOnBenchmarks:
    def test_cputask_full_coverage_fast(self):
        generator, result = run_stcg("CPUTask", budget_s=20.0)
        assert result.decision == 1.0
        assert result.condition == 1.0
        assert result.mcdc == 1.0

    def test_lanswitch_full_coverage(self):
        generator, result = run_stcg("LANSwitch", budget_s=30.0)
        assert result.decision == 1.0

    def test_ledlc_blocked_only_by_dead_default(self):
        generator, result = run_stcg("LEDLC", budget_s=45.0, seed=3)
        uncovered = [b.label for b in generator.collector.uncovered_branches()]
        assert uncovered == ["mode_duty:default"]

    def test_twc_dead_logic_caps_coverage(self):
        generator, result = run_stcg("TWC", budget_s=30.0, seed=3)
        model = get_benchmark("TWC")
        total = generator.compiled.registry.n_branches
        reachable = (total - model.dead_branches) / total
        # STCG must not exceed the reachable fraction...
        assert result.decision <= reachable + 1e-9
        # ...and should get most of what is reachable.
        assert result.decision >= reachable - 3 / total

    def test_suite_replays_to_same_coverage(self):
        generator, result = run_stcg("CPUTask", budget_s=15.0)
        replayed = result.suite.replay(get_benchmark("CPUTask").build())
        assert replayed.decision_coverage() == pytest.approx(result.decision)
        assert replayed.mcdc_coverage() == pytest.approx(result.mcdc)


class TestComparativeShape:
    """The paper's headline: STCG >> random search on state-heavy models."""

    def test_cputask_stcg_beats_simcotest(self):
        budget = 10.0
        stcg = StcgGenerator(
            get_benchmark("CPUTask").build(),
            StcgConfig(budget_s=budget, seed=1),
        ).run()
        simco = SimCoTestGenerator(
            get_benchmark("CPUTask").build(),
            SimCoTestConfig(budget_s=budget, seed=1),
        ).run()
        assert stcg.decision > simco.decision
        assert stcg.mcdc > simco.mcdc

    def test_tcp_handshake_needs_state_awareness(self):
        budget = 15.0
        stcg = StcgGenerator(
            get_benchmark("TCP").build(), StcgConfig(budget_s=budget, seed=1)
        ).run()
        simco = SimCoTestGenerator(
            get_benchmark("TCP").build(),
            SimCoTestConfig(budget_s=budget, seed=1),
        ).run()
        assert stcg.decision > simco.decision


class TestProvenance:
    def test_solver_cases_dominate_deep_coverage(self):
        """Most coverage progress comes from state-aware solving (the
        paper's triangle markers)."""
        generator, result = run_stcg("CPUTask", budget_s=20.0)
        solver_branches = sum(
            len(c.new_branch_ids) for c in result.suite if c.origin == "solver"
        )
        random_branches = sum(
            len(c.new_branch_ids) for c in result.suite if c.origin == "random"
        )
        assert solver_branches > random_branches
