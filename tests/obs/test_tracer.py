"""Tests for the tracing primitives: NullTracer, SpanTracer, PhaseProfiler."""

from repro.obs import NULL_TRACER, NullTracer, PhaseProfiler, SpanTracer


class FakeClock:
    """Deterministic monotonic clock; advance() controls elapsed time."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False

    def test_span_is_shared_and_stateless(self):
        # One shared no-op context manager: no allocation per span.
        a = NULL_TRACER.span("solve", target="b1")
        b = NULL_TRACER.span("encode")
        assert a is b
        with a:
            pass  # usable as a context manager

    def test_count_and_sample_are_noops(self):
        tracer = NullTracer()
        tracer.count("sim_steps", 5)
        tracer.sample("tree_nodes", 0.1, 3.0)
        # No attributes grew: NullTracer carries no per-instance state.
        assert not hasattr(tracer, "__dict__")

    def test_exceptions_propagate(self):
        try:
            with NULL_TRACER.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        else:
            raise AssertionError("span must not swallow exceptions")


class TestSpanTracer:
    def test_records_spans_with_durations(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("solve", target="b1"):
            clock.advance(0.5)
        with tracer.span("solve", target="b2"):
            clock.advance(0.25)
        assert [s.name for s in tracer.spans] == ["solve", "solve"]
        assert tracer.spans[0].seconds == 0.5
        assert tracer.spans[0].tags == {"target": "b1"}

    def test_phase_totals_aggregates(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        for dt in (0.5, 0.25):
            with tracer.span("solve"):
                clock.advance(dt)
        with tracer.span("encode"):
            clock.advance(1.0)
        totals = tracer.phase_totals()
        assert totals["solve"] == {"count": 2, "seconds": 0.75}
        assert totals["encode"] == {"count": 1, "seconds": 1.0}

    def test_target_totals_slowest_first(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("solve", target="fast"):
            clock.advance(0.1)
        with tracer.span("solve", target="slow"):
            clock.advance(2.0)
        with tracer.span("scan"):  # untagged: excluded
            clock.advance(5.0)
        targets = tracer.target_totals()
        assert [t["target"] for t in targets] == ["slow", "fast"]
        assert targets[0] == {"target": "slow", "calls": 1, "seconds": 2.0}

    def test_counters_and_series(self):
        tracer = SpanTracer(clock=FakeClock())
        tracer.count("sim_steps")
        tracer.count("sim_steps", 4)
        tracer.sample("tree_nodes", 0.1, 1.0)
        tracer.sample("tree_nodes", 0.2, 3.0)
        assert tracer.counters == {"sim_steps": 5}
        assert tracer.series["tree_nodes"] == [(0.1, 1.0), (0.2, 3.0)]

    def test_summary_shape(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("solve", target="b"):
            clock.advance(0.5)
        tracer.count("hits", 2)
        tracer.sample("tree_nodes", 0.1, 1.0)
        summary = tracer.summary()
        assert set(summary) == {"phase_totals", "targets", "counters", "series"}
        assert summary["counters"] == {"hits": 2}
        assert summary["series"]["tree_nodes"] == [[0.1, 1.0]]


class TestPhaseProfiler:
    def test_aggregates_without_keeping_spans(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        for dt in (0.5, 0.25, 0.25):
            with profiler.span("solve", target="b1"):
                clock.advance(dt)
        totals = profiler.phase_totals()
        assert totals["solve"] == {"count": 3, "seconds": 1.0}
        assert profiler.target_totals() == [
            {"target": "b1", "calls": 3, "seconds": 1.0}
        ]
        # No raw spans kept by default: memory stays bounded.
        assert profiler.samples == []

    def test_sample_every_keeps_every_nth_span(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock, sample_every=2)
        for i in range(5):
            with profiler.span(f"phase{i}"):
                clock.advance(0.1)
        assert [s.name for s in profiler.samples] == ["phase1", "phase3"]

    def test_series_decimation_bounds_memory(self):
        profiler = PhaseProfiler(clock=FakeClock(), max_series_points=8)
        for i in range(40):
            profiler.sample("tree_nodes", float(i), float(i))
        points = profiler.series["tree_nodes"]
        assert len(points) <= 9  # halved whenever the cap is exceeded
        # First and last samples survive decimation.
        assert points[0] == (0.0, 0.0)
        assert points[-1] == (39.0, 39.0)
        # Order is preserved.
        assert [t for t, _ in points] == sorted(t for t, _ in points)

    def test_max_series_points_floor(self):
        profiler = PhaseProfiler(clock=FakeClock(), max_series_points=1)
        assert profiler.max_series_points == 8

    def test_summary_matches_span_tracer_shape(self):
        clock = FakeClock()
        profiler = PhaseProfiler(clock=clock)
        with profiler.span("encode"):
            clock.advance(0.5)
        profiler.count("misses")
        summary = profiler.summary()
        assert set(summary) == {"phase_totals", "targets", "counters", "series"}
        assert summary["phase_totals"]["encode"]["count"] == 1
