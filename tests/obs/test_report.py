"""Tests for the ``repro report`` renderer and CLI subcommand."""

import pytest

from repro import api, cli
from repro.models.registry import BenchmarkModel
from repro.obs.report import render_report, trace_phase_totals

from tests.conftest import build_counter_model

TINY = BenchmarkModel("Tiny", "counter fixture", build_counter_model, 0, 0)


def traced_events():
    """A synthetic matrix-style stream carrying every trace event kind."""
    return [
        {"event": "log_opened", "seq": 0, "t": 0.0},
        {"event": "matrix_started", "seq": 1, "t": 0.0, "cells": 1},
        {"event": "cell_started", "seq": 2, "t": 0.0, "cell": 0,
         "model": "M", "tool": "STCG", "repetition": 0},
        {"event": "timeline_point", "seq": 3, "t": 0.1, "cell": 0,
         "decision": 0.5},
        {"event": "timeline_point", "seq": 4, "t": 0.2, "cell": 0,
         "decision": 1.0},
        {"event": "phase_totals", "seq": 5, "t": 0.3, "cell": 0,
         "model": "M", "tool": "STCG", "repetition": 0,
         "phases": {"solve": {"count": 4, "seconds": 0.2},
                    "encode": {"count": 2, "seconds": 0.1}},
         "counters": {"encoding_hits": 3}},
        {"event": "solver_stages", "seq": 6, "t": 0.3, "cell": 0,
         "model": "M", "tool": "STCG", "repetition": 0,
         "stages": {"sample": {"attempts": 4, "finished": 3, "wins": 3,
                               "seconds": 0.15},
                    "avm": {"attempts": 1, "finished": 1, "wins": 1,
                            "seconds": 0.05}}},
        {"event": "kernel_stats", "seq": 6, "t": 0.3, "cell": 0,
         "model": "M", "tool": "STCG", "repetition": 0,
         "enabled": True, "specialized_blocks": 42, "fallback_blocks": 1,
         "fallback_classes": ["MovingAccumulator"], "kernel_steps": 1234},
        {"event": "tree_growth", "seq": 7, "t": 0.3, "cell": 0,
         "model": "M", "tool": "STCG", "repetition": 0,
         "points": [[0.0, 1], [0.1, 3], [0.2, 7]]},
        {"event": "span", "seq": 8, "t": 0.3, "cell": 0,
         "model": "M", "tool": "STCG", "repetition": 0,
         "name": "solve", "target": "b1", "calls": 3, "seconds": 0.18},
        {"event": "cell_finished", "seq": 9, "t": 0.3, "cell": 0,
         "model": "M", "tool": "STCG", "repetition": 0, "decision": 1.0},
        {"event": "matrix_finished", "seq": 10, "t": 0.3, "cells": 1,
         "ok": 1, "failed": 0, "wall_s": 0.3},
    ]


class TestRenderReport:
    def test_traced_stream_renders_every_section(self):
        text = render_report(traced_events())
        assert "run report" in text
        assert "cells ok: 1" in text
        assert "phase-time breakdown" in text
        assert "solve" in text and "66.7%" in text  # 0.2 of 0.3 traced
        assert "counters: encoding_hits=3" in text
        assert "solver-stage win rates" in text
        assert "avm" in text and "100.0%" in text
        assert "M/STCG rep0" in text
        assert "simulation kernel" in text
        assert "42" in text and "1234" in text
        assert "fallback classes: MovingAccumulator" in text
        assert "7 nodes" in text          # tree growth final value
        assert "100.0% in 0.20s" in text  # coverage curve
        assert "b1" in text and "x3" in text  # slowest targets

    def test_untraced_stream_degrades_gracefully(self):
        events = [e for e in traced_events()
                  if e["event"] not in ("phase_totals", "solver_stages",
                                        "tree_growth", "span")]
        text = render_report(events)
        # Every absent kind is named explicitly, never zero-filled.
        assert "no events of kind phase_totals — re-run with --trace" in text
        assert "no events of kind solver_stages" in text
        assert "no events of kind tree_growth" in text
        assert "no events of kind span" in text
        assert "no events of kind metrics" in text
        # Coverage still renders from plain timeline points.
        assert "100.0% in 0.20s" in text

    def test_trace_missing_kinds_names_absent_kinds(self):
        from repro.obs.report import trace_missing_kinds

        assert trace_missing_kinds(traced_events()) == [
            "cache_stats", "solverc_stats", "metrics",
        ]
        assert "phase_totals" in trace_missing_kinds([])

    def test_empty_stream(self):
        text = render_report([])
        assert "events: 0" in text

    def test_failures_listed(self):
        events = traced_events()
        events.insert(-1, {
            "event": "cell_failed", "seq": 99, "t": 0.25, "cell": 1,
            "model": "M", "tool": "SLDV", "repetition": 0,
            "kind": "timeout", "message": "slow",
        })
        text = render_report(events)
        assert "[failed] M/SLDV rep0: timeout: slow" in text

    def test_top_n_limits_targets(self):
        events = traced_events()
        for i in range(5):
            events.append({
                "event": "span", "seq": 100 + i, "t": 0.3, "cell": 0,
                "name": "solve", "target": f"extra{i}", "calls": 1,
                "seconds": 0.01 * (i + 1),
            })
        text = render_report(events, top_n=2)
        # Exactly two target rows: the two slowest survive.
        assert "b1" in text and "extra4" in text
        assert "extra0" not in text

    def test_metrics_section_folds_snapshots(self):
        from repro.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("stcg.solver_calls").inc(4)
        registry.counter("stcg.sat").inc(0)
        events = traced_events() + [{
            "event": "metrics", "seq": 50, "t": 0.3, "cell": 0,
            "model": "M", "tool": "STCG", "repetition": 0,
            "snapshot": registry.snapshot(),
        }]
        text = render_report(events)
        assert "unified metrics (repro.metrics/1)" in text
        assert "stcg.solver_calls" in text and "4" in text
        assert "1 zero counter(s) omitted" in text

    def test_stalls_listed_in_summary(self):
        events = traced_events()
        events.insert(-1, {
            "event": "cell_stalled", "seq": 98, "t": 0.25, "cell": 0,
            "model": "M", "tool": "STCG", "repetition": 0,
            "phase": "solve_scan", "quiet_s": 5.0, "threshold_s": 4.0,
            "last_tree_nodes": 9, "last_solver_calls": 3,
            "last_coverage": 0.5,
        })
        text = render_report(events)
        assert "[stalled] M/STCG rep0" in text
        assert "quiet 5.0s" in text

    def test_trace_phase_totals(self):
        totals = trace_phase_totals(traced_events())
        assert totals == {"solve": pytest.approx(0.2),
                          "encode": pytest.approx(0.1)}
        assert trace_phase_totals([]) == {}


class TestReportCli:
    def test_report_on_traced_single_run(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        api.generate(TINY, budget_s=5.0, seed=0,
                     events_out=str(path), trace=True)
        assert cli.main(["report", str(path), "--require-trace"]) == 0
        out = capsys.readouterr().out
        assert "phase-time breakdown" in out
        assert "solver-stage win rates" in out
        assert "Tiny/STCG" in out

    def test_require_trace_fails_on_untraced_stream(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        api.generate(TINY, budget_s=5.0, seed=0, events_out=str(path))
        assert cli.main(["report", str(path)]) == 0
        assert cli.main(["report", str(path), "--require-trace"]) == 1
        err = capsys.readouterr().err
        # The error names every absent repro.trace/1 kind.
        assert "missing repro.trace/1 event kind(s)" in err
        assert "phase_totals" in err and "solver_stages" in err
        assert "metrics" in err

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert cli.main(["report", str(tmp_path / "nope.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err
