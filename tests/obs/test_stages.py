"""Tests for solver-stage canonicalization and stage metrics accounting."""

from dataclasses import dataclass, field
from typing import Dict

import pytest

from repro.obs.stages import (
    SOLVER_STAGES,
    SolverStageMetrics,
    canonical_stage,
    merge_stage_dicts,
)
from repro.solver.engine import Status


@dataclass
class FakeStats:
    """Just the SolveStats fields SolverStageMetrics.record consumes."""

    status: Status
    stage: str
    stage_times: Dict[str, float] = field(default_factory=dict)


class TestCanonicalStage:
    @pytest.mark.parametrize("tag,expected", [
        ("fold", "fold"),
        ("contract", "contract"),
        ("corner", "sample"),
        ("sample", "sample"),
        ("sample-timeout", "sample"),
        ("split", "split"),
        ("split-corner", "split"),
        ("split-sample", "split"),
        ("avm", "avm"),
    ])
    def test_known_tags(self, tag, expected):
        assert canonical_stage(tag) == expected
        assert expected in SOLVER_STAGES

    def test_unknown_tag_passes_through(self):
        assert canonical_stage("mystery") == "mystery"

    def test_empty_tag(self):
        assert canonical_stage("") == "unknown"


class TestSolverStageMetrics:
    def test_record_splits_attempts_and_finished(self):
        metrics = SolverStageMetrics()
        # A SAT call that passed through contract and sample, won by AVM.
        metrics.record(FakeStats(
            Status.SAT, "avm",
            {"contract": 0.1, "sample": 0.2, "avm": 0.7},
        ))
        # An UNSAT verdict produced directly by the contractor.
        metrics.record(FakeStats(Status.UNSAT, "contract", {"contract": 0.3}))
        snap = metrics.as_dict()
        assert metrics.calls == 2
        assert metrics.by_status == {"sat": 1, "unsat": 1}
        assert snap["contract"]["attempts"] == 2
        assert snap["contract"]["finished"] == 1
        assert snap["contract"]["wins"] == 0
        assert snap["contract"]["seconds"] == pytest.approx(0.4)
        assert snap["avm"] == {
            "attempts": 1, "finished": 1, "wins": 1, "seconds": 0.7,
        }

    def test_fine_tags_fold_onto_canonical_stages(self):
        metrics = SolverStageMetrics()
        metrics.record(FakeStats(Status.SAT, "split-corner",
                                 {"sample": 0.1, "split": 0.2}))
        snap = metrics.as_dict()
        assert snap["split"]["finished"] == 1 and snap["split"]["wins"] == 1

    def test_invariants_finished_and_wins(self):
        metrics = SolverStageMetrics()
        calls = [
            FakeStats(Status.SAT, "corner", {"sample": 0.1}),
            FakeStats(Status.SAT, "avm", {"sample": 0.1, "avm": 0.4}),
            FakeStats(Status.UNSAT, "contract", {"contract": 0.1}),
            FakeStats(Status.UNKNOWN, "avm", {"sample": 0.2, "avm": 1.0}),
        ]
        for stats in calls:
            metrics.record(stats)
        snap = metrics.as_dict()
        assert sum(s["finished"] for s in snap.values()) == metrics.calls
        assert sum(s["wins"] for s in snap.values()) == \
            metrics.by_status.get("sat", 0)

    def test_as_dict_pipeline_order(self):
        metrics = SolverStageMetrics()
        metrics.record(FakeStats(Status.SAT, "avm",
                                 {"avm": 0.1, "contract": 0.1, "sample": 0.1}))
        names = list(metrics.as_dict())
        assert names == ["contract", "sample", "avm"]  # pipeline order


class TestMergeStageDicts:
    def test_merges_in_place_and_sums(self):
        into = {"avm": {"attempts": 1, "finished": 1, "wins": 1,
                        "seconds": 0.5}}
        other = {
            "avm": {"attempts": 2, "finished": 1, "wins": 0, "seconds": 0.25},
            "sample": {"attempts": 3, "finished": 2, "wins": 2,
                       "seconds": 1.0},
        }
        result = merge_stage_dicts(into, other)
        assert result is into
        assert into["avm"] == {"attempts": 3, "finished": 2, "wins": 1,
                               "seconds": 0.75}
        assert into["sample"]["attempts"] == 3

    def test_none_and_partial_stats_tolerated(self):
        into = {}
        merge_stage_dicts(into, None)
        assert into == {}
        merge_stage_dicts(into, {"fold": {"finished": 2}})
        assert into["fold"] == {"attempts": 0, "finished": 2, "wins": 0,
                                "seconds": 0.0}
