"""Tests for the structured telemetry layer: events, JSONL, manifest."""

import json

import pytest

from repro.errors import ReproError
from repro.exec import execute_matrix
from repro.models.registry import BenchmarkModel
from repro.telemetry import (
    EVENT_SCHEMA,
    EventLog,
    MANIFEST_SCHEMA,
    TRACE_KINDS,
    TRACE_SCHEMA,
    build_manifest,
    read_events,
)

from tests.conftest import build_counter_model, build_crashy_model

TINY = BenchmarkModel("Tiny", "counter fixture", build_counter_model, 0, 0)
CRASHY = BenchmarkModel("Crashy", "crash injection", build_crashy_model, 0, 0)


class TestEventLog:
    def test_in_memory_emission(self):
        log = EventLog()
        log.emit("run_started", model="M", tool="STCG")
        log.emit("run_finished", model="M", tool="STCG", decision=0.5)
        assert [e["event"] for e in log.events] == ["run_started", "run_finished"]
        assert [e["seq"] for e in log.events] == [0, 1]
        assert log.of_kind("run_finished")[0]["decision"] == 0.5

    def test_jsonl_stream_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(str(path)) as log:
            log.emit("cell_started", cell=0, model="M", tool="STCG")
            log.emit("cell_failed", cell=0, model="M", tool="STCG",
                     kind="crash", message="boom")
        events = read_events(str(path))
        assert events[0]["event"] == "log_opened"
        assert events[0]["schema"] == EVENT_SCHEMA
        assert events[-1]["kind"] == "crash"
        # Every line was valid JSON with monotonically increasing seq.
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_odd_payload_values_are_coerced(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(str(path)) as log:
            log.emit("stats", branches={3, 1, 2}, pair=(1, 2))
        event = read_events(str(path))[-1]
        assert event["branches"] == [1, 2, 3]
        assert event["pair"] == [1, 2]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"event": "ok", "seq": 0}\nnot json\n')
        with pytest.raises(ReproError, match="malformed"):
            read_events(str(path))

    def test_manifest_aggregates_cells(self):
        log = EventLog()
        log.emit("matrix_started", models=["M"], tools=["STCG"], cells=3)
        for decision in (0.4, 0.8):
            log.emit("cell_finished", model="M", tool="STCG",
                     decision=decision, condition=0.5, mcdc=0.25,
                     duration_s=1.0, stats={"solver_calls": 10, "sat": 4})
        log.emit("cell_failed", model="M", tool="STCG", repetition=2,
                 seed=1, kind="timeout", message="slow", duration_s=2.0)
        log.emit("matrix_finished", cells=3, ok=2, failed=1, wall_s=4.0)
        manifest = log.manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["cells"] == 3
        assert manifest["ok"] == 2 and manifest["failed"] == 1
        agg = manifest["coverage"]["M"]["STCG"]
        assert agg["decision"] == pytest.approx(0.6)
        assert agg["runs"] == 2
        # Schema-stable: every stat key appears even when its total is zero.
        assert manifest["stat_totals"] == {
            "solver_calls": 20, "sat": 8, "unsat": 0, "unknown": 0,
            "steps_executed": 0, "random_sequences": 0, "simulations": 0,
            "const_false_skips": 0, "verdict_skips": 0,
        }
        assert manifest["wall_s"] == 4.0
        assert manifest["failures"][0]["kind"] == "timeout"
        assert manifest["config"]["cells"] == 3

    def test_manifest_aggregates_trace_events(self):
        log = EventLog()
        log.emit("matrix_started", models=["M"], tools=["STCG"], cells=1)
        for cell in (0, 1):
            log.emit("phase_totals", cell=cell, model="M", tool="STCG",
                     phases={"solve": {"count": 2, "seconds": 0.5}})
            log.emit("solver_stages", cell=cell, model="M", tool="STCG",
                     stages={"avm": {"attempts": 1, "finished": 1,
                                     "wins": 1, "seconds": 0.25}})
        manifest = log.manifest()
        assert manifest["phase_seconds"] == {"solve": 1.0}
        assert manifest["solver_stages"]["avm"]["wins"] == 2
        assert manifest["solver_stages"]["avm"]["seconds"] == 0.5

    def test_untraced_manifest_has_empty_trace_aggregates(self):
        log = EventLog()
        log.emit("matrix_started", models=["M"], tools=["STCG"], cells=0)
        manifest = log.manifest()
        assert manifest["phase_seconds"] == {}
        assert manifest["solver_stages"] == {}


class TestExecutorTelemetry:
    def test_matrix_event_stream(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(str(path)) as log:
            execute_matrix(
                [TINY, CRASHY], ("STCG",),
                budget_s=2.0, repetitions=1, workers=1, events=log,
            )
        events = read_events(str(path))
        kinds = [e["event"] for e in events]
        assert kinds[1] == "matrix_started"
        assert kinds[-1] == "matrix_finished"
        assert kinds.count("cell_started") == 2
        assert kinds.count("cell_finished") == 1
        assert kinds.count("cell_failed") == 1
        # STCG on the counter model emits at least one timeline point.
        assert kinds.count("timeline_point") >= 1
        finished = next(e for e in events if e["event"] == "cell_finished")
        assert finished["model"] == "Tiny"
        assert 0.0 <= finished["decision"] <= 1.0
        assert finished["stats"]["solver_calls"] >= 0
        failed = next(e for e in events if e["event"] == "cell_failed")
        assert failed["model"] == "Crashy" and failed["kind"] == "crash"

    def test_manifest_matches_execution(self):
        log = EventLog()
        result = execute_matrix(
            [TINY], ("STCG", "SimCoTest"),
            budget_s=2.0, repetitions=1, workers=1, events=log,
        )
        manifest = result.manifest
        assert manifest["cells"] == 2
        assert manifest["ok"] == 2
        for tool in ("STCG", "SimCoTest"):
            assert manifest["coverage"]["Tiny"][tool]["decision"] == \
                result.outcomes["Tiny"][tool].decision

    def test_traced_matrix_emits_trace_events_per_cell(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(str(path)) as log:
            execute_matrix(
                [TINY], ("STCG", "SimCoTest"),
                budget_s=2.0, repetitions=1, workers=1, events=log,
                trace=True,
            )
        events = read_events(str(path))
        assert next(
            e for e in events if e["event"] == "matrix_started"
        )["trace"] is True
        phase_events = [e for e in events if e["event"] == "phase_totals"]
        # One per cell, tagged with the trace schema and the cell identity.
        assert {e["tool"] for e in phase_events} == {"STCG", "SimCoTest"}
        for event in phase_events:
            assert event["schema"] == TRACE_SCHEMA
            assert event["phases"]
            assert "cell" in event and "seed" in event
        # STCG cells additionally report solver stages and tree growth.
        stcg_stages = [e for e in events if e["event"] == "solver_stages"
                       and e["tool"] == "STCG"]
        assert stcg_stages and stcg_stages[0]["stages"]
        growth = [e for e in events if e["event"] == "tree_growth"]
        assert growth and growth[0]["tool"] == "STCG"
        assert growth[0]["points"]
        # ... and the simulation-kernel specialization stats.
        kernel = [e for e in events if e["event"] == "kernel_stats"
                  and e["tool"] == "STCG"]
        assert kernel and kernel[0]["enabled"] is True
        assert kernel[0]["specialized_blocks"] > 0
        assert kernel[0]["kernel_steps"] > 0

    def test_untraced_matrix_has_no_trace_events(self):
        log = EventLog()
        execute_matrix(
            [TINY], ("STCG",), budget_s=2.0, repetitions=1, workers=1,
            events=log,
        )
        kinds = {e["event"] for e in log.events}
        assert not (kinds & set(TRACE_KINDS))


class TestManifestRoundTrip:
    def test_disk_round_trip_matches_in_memory(self, tmp_path):
        """EventLog → disk → read_events → manifest is loss-free."""
        path = tmp_path / "run.jsonl"
        with EventLog(str(path)) as log:
            execute_matrix(
                [TINY, CRASHY], ("STCG", "SimCoTest"),
                budget_s=2.0, repetitions=1, workers=1, events=log,
                trace=True,
            )
            in_memory = log.manifest()
        from_disk = build_manifest(read_events(str(path)))
        assert from_disk == in_memory
        assert from_disk["phase_seconds"]
        assert from_disk["solver_stages"]

    def test_write_manifest_equals_build_manifest(self, tmp_path):
        events_path = tmp_path / "run.jsonl"
        manifest_path = tmp_path / "run.manifest.json"
        with EventLog(str(events_path)) as log:
            execute_matrix(
                [TINY], ("STCG",), budget_s=2.0, repetitions=1, workers=1,
                events=log, trace=True,
            )
            log.write_manifest(str(manifest_path))
        written = json.loads(manifest_path.read_text())
        assert written == build_manifest(read_events(str(events_path)))


def _interleaved_cell_events():
    """A synthetic traced 2-model x 2-rep stream with per-cell events."""
    from repro.metrics import MetricsRegistry

    events = [
        {"event": "log_opened", "seq": 0, "t": 0.0, "schema": EVENT_SCHEMA},
        {"event": "matrix_started", "seq": 1, "t": 0.0, "models": ["A", "B"],
         "tools": ["STCG"], "budget_s": 1.0, "repetitions": 2, "workers": 4},
    ]
    seq = 2
    for index, (model, rep) in enumerate(
        [("A", 0), ("A", 1), ("B", 0), ("B", 1)]
    ):
        identity = {"cell": index, "model": model, "tool": "STCG",
                    "repetition": rep}
        registry = MetricsRegistry()
        registry.counter("stcg.solver_calls").inc(index + 1)
        registry.histogram("stcg.case_length", (2.0, 4.0)).observe(
            float(index + 1)
        )
        events += [
            {"event": "cell_started", "seq": seq, "t": 0.0, **identity},
            {"event": "cell_finished", "seq": seq + 1, "t": 0.1, **identity,
             "duration_s": 0.1 * (index + 1), "decision": 0.25 * (index + 1),
             "condition": 0.5, "mcdc": 0.5, "cases": 2,
             "stats": {"solver_calls": index + 1, "sat": index}},
            {"event": "phase_totals", "seq": seq + 2, "t": 0.1, **identity,
             "schema": TRACE_SCHEMA,
             "phases": {"solve": {"count": 1, "seconds": 0.1 * (index + 1)},
                        "execute": {"count": 1, "seconds": 0.07}}},
            {"event": "metrics", "seq": seq + 3, "t": 0.1, **identity,
             "schema": TRACE_SCHEMA, "snapshot": registry.snapshot()},
        ]
        seq += 4
    events.append({"event": "matrix_finished", "seq": seq, "t": 0.5,
                   "cells": 4, "ok": 4, "failed": 0, "wall_s": 0.5})
    return events


class TestManifestOrderIndependence:
    """Satellite of the observability PR: multi-worker interleavings of the
    same per-cell events must fold to the bit-identical manifest."""

    def test_any_permutation_of_cell_events_is_identical(self):
        import random

        events = _interleaved_cell_events()
        reference = build_manifest(events)
        # Only per-cell events interleave under workers=N; the lifecycle
        # frame (log_opened/matrix_*) is always emitted by the parent.
        head, cell_events, tail = events[:2], events[2:-1], events[-1:]
        rng = random.Random(7)
        for _ in range(10):
            shuffled = list(cell_events)
            rng.shuffle(shuffled)
            assert build_manifest(head + shuffled + tail) == reference

    def test_reversed_stream_matches_forward_stream(self):
        events = _interleaved_cell_events()
        reference = build_manifest(events)
        reversed_cells = events[:2] + list(reversed(events[2:-1])) + events[-1:]
        assert build_manifest(reversed_cells) == reference

    def test_duplicate_kind_events_aggregate_not_overwrite(self):
        """Two phase_totals events for one cell sum, in either order."""
        events = _interleaved_cell_events()
        extra = {"event": "phase_totals", "seq": 99, "t": 0.2, "cell": 0,
                 "model": "A", "tool": "STCG", "repetition": 0,
                 "schema": TRACE_SCHEMA,
                 "phases": {"solve": {"count": 1, "seconds": 0.05}}}
        first = build_manifest(events[:3] + [extra] + events[3:])
        last = build_manifest(events + [extra])
        assert first == last
        base = build_manifest(events)
        assert first["phase_seconds"]["solve"] == pytest.approx(
            base["phase_seconds"]["solve"] + 0.05
        )

    def test_metrics_fold_is_order_independent(self):
        events = _interleaved_cell_events()
        reference = build_manifest(events)["metrics"]
        assert reference["counters"]["stcg.solver_calls"] == 1 + 2 + 3 + 4
        assert reference["histograms"]["stcg.case_length"]["count"] == 4
        shuffled = events[:2] + list(reversed(events[2:-1])) + events[-1:]
        assert build_manifest(shuffled)["metrics"] == reference

    def test_workers_1_and_4_streams_build_identical_manifests(self):
        """End-to-end: real pooled runs produce the same manifest as serial
        (timing fields excluded — they are wall-clock, not aggregates)."""

        def manifest(workers):
            log = EventLog()
            result = execute_matrix(
                [TINY], ("STCG",), budget_s=2.0, repetitions=2, seed=5,
                workers=workers, events=log, trace=True,
            )
            assert not result.failures
            return log.manifest()

        serial, parallel = manifest(1), manifest(4)
        for key in ("coverage", "stat_totals", "cache",
                    "cells", "ok", "failed", "stalls"):
            assert serial[key] == parallel[key], key

        # Stage *counters* are deterministic; stage seconds are wall-clock
        # and jitter between any two real runs, workers aside.
        def stage_counts(manifest_doc):
            return {
                stage: {k: v for k, v in stat.items() if k != "seconds"}
                for stage, stat in manifest_doc["solver_stages"].items()
            }

        assert stage_counts(serial) == stage_counts(parallel)
        assert (serial["metrics"]["counters"]
                == parallel["metrics"]["counters"])
        assert (serial["metrics"]["histograms"]
                == parallel["metrics"]["histograms"])
