"""Tests for ``repro diff`` (run regression analysis) and ``repro tail``."""

import json

import pytest

from repro import api, cli
from repro.errors import ReproError
from repro.models.registry import BenchmarkModel
from repro.telemetry.diff import (
    Thresholds,
    cache_hit_rate,
    diff_runs,
    find_regressions,
    kernel_fallback_rate,
    load_run,
    render_diff,
    solverc_fallback_rate,
)
from repro.telemetry.tail import cell_rows, render_tail

from tests.conftest import build_counter_model

TINY = BenchmarkModel("Tiny", "counter fixture", build_counter_model, 0, 0)


def _manifest(**overrides):
    base = {
        "schema": "repro.run-manifest/1",
        "cells": 2, "ok": 2, "failed": 0,
        "coverage": {
            "Tiny": {"STCG": {"decision": 1.0, "condition": 1.0,
                              "mcdc": 1.0, "runs": 2}},
        },
        "phase_seconds": {"solve": 1.0, "execute": 0.5},
        "cache": {"encoding_hits": 80, "encoding_misses": 20,
                  "compiled_hits": 0, "compiled_misses": 0},
        "metrics": {"counters": {
            "kernel.specialized_blocks": 90, "kernel.fallback_blocks": 10,
            "solverc.candidates_batched": 50, "solverc.candidates_scalar": 0,
            "stcg.solver_calls": 12,
        }},
        "stalls": [],
    }
    base.update(overrides)
    return base


class TestRates:
    def test_cache_hit_rate(self):
        assert cache_hit_rate(_manifest()) == pytest.approx(0.8)
        assert cache_hit_rate({"cache": {}}) is None

    def test_kernel_fallback_rate(self):
        assert kernel_fallback_rate(_manifest()) == pytest.approx(0.1)
        assert kernel_fallback_rate({}) is None

    def test_solverc_fallback_rate(self):
        assert solverc_fallback_rate(_manifest()) == pytest.approx(0.0)
        assert solverc_fallback_rate({}) is None


class TestDiffRuns:
    def test_self_diff_has_no_regressions(self):
        diff = diff_runs(_manifest(), _manifest())
        assert find_regressions(diff) == []
        assert "no regressions detected" in render_diff(diff, [])

    def test_coverage_drop_is_always_a_regression(self):
        worse = _manifest(coverage={
            "Tiny": {"STCG": {"decision": 0.8, "condition": 1.0,
                              "mcdc": 1.0, "runs": 2}},
        })
        problems = find_regressions(diff_runs(_manifest(), worse))
        assert any("decision" in p and "dropped" in p for p in problems)

    def test_new_failures_are_a_regression(self):
        worse = _manifest(failed=1)
        problems = find_regressions(diff_runs(_manifest(), worse))
        assert any("failed cell(s)" in p for p in problems)

    def test_cache_hit_drop_respects_slack(self):
        worse = _manifest(cache={"encoding_hits": 76, "encoding_misses": 24,
                                 "compiled_hits": 0, "compiled_misses": 0})
        diff = diff_runs(_manifest(), worse)
        assert find_regressions(diff) == []  # 4-point dip inside slack
        tight = Thresholds(cache_hit_drop=0.01)
        assert any("cache hit-rate" in p
                   for p in find_regressions(diff, tight))

    def test_fallback_rate_increase_flags(self):
        worse = _manifest(metrics={"counters": {
            "kernel.specialized_blocks": 50, "kernel.fallback_blocks": 50,
            "solverc.candidates_batched": 50, "solverc.candidates_scalar": 0,
            "stcg.solver_calls": 12,
        }})
        problems = find_regressions(diff_runs(_manifest(), worse))
        assert any("kernel fallback" in p for p in problems)

    def test_phase_slowdown_needs_floor_and_ratio(self):
        slower = _manifest(phase_seconds={"solve": 1.8, "execute": 0.5})
        problems = find_regressions(diff_runs(_manifest(), slower))
        assert any("phase 'solve' slowed" in p for p in problems)
        # Tiny absolute growth stays under the floor even at a high ratio.
        tiny = _manifest(phase_seconds={"solve": 1.0, "execute": 0.01})
        fast = _manifest(phase_seconds={"solve": 1.0, "execute": 0.2})
        assert find_regressions(diff_runs(tiny, fast)) == []

    def test_changed_counters_are_listed(self):
        changed = _manifest(metrics={"counters": {
            "kernel.specialized_blocks": 90, "kernel.fallback_blocks": 10,
            "solverc.candidates_batched": 50, "solverc.candidates_scalar": 0,
            "stcg.solver_calls": 20,
        }})
        diff = diff_runs(_manifest(), changed)
        assert diff.counters == {"stcg.solver_calls": (12, 20)}
        assert "stcg.solver_calls" in render_diff(diff, [])


def _provenance_manifest(objectives):
    """A manifest whose one cell carries a provenance snapshot."""
    return _manifest(provenance={
        "Tiny": {"STCG": {"tool": "STCG", "objectives": objectives,
                          "totals": {"objectives": len(objectives)}}},
    })


_COVERED = {
    "D:is_high:true": {"status": "covered", "case": 0, "step": 1,
                       "origin": "solver"},
    "D:is_high:false": {"status": "covered", "case": 1, "step": 1,
                        "origin": "random"},
}


class TestRegressedObjectives:
    """Empty-set vs absent-section semantics of the objective diff."""

    def test_empty_objectives_map_counts_as_lost(self):
        # A cell that reports provenance with ZERO covered objectives is a
        # real (catastrophic) regression — it must not read like a cell
        # that simply didn't record provenance.
        baseline = _provenance_manifest(_COVERED)
        doctored = _provenance_manifest({})
        diff = diff_runs(baseline, doctored)
        assert diff.objectives == {
            ("Tiny", "STCG"): list(_COVERED),
        }
        problems = find_regressions(diff)
        assert any("lost 2 objective(s)" in p for p in problems)

    def test_objective_missing_from_candidate_map_counts_as_lost(self):
        remaining = {"D:is_high:true": _COVERED["D:is_high:true"]}
        diff = diff_runs(
            _provenance_manifest(_COVERED), _provenance_manifest(remaining)
        )
        assert diff.objectives == {("Tiny", "STCG"): ["D:is_high:false"]}

    def test_absent_provenance_section_is_not_a_regression(self):
        # Provenance off (or a pre-provenance manifest): the section is
        # absent entirely, which must stay silent.
        baseline = _provenance_manifest(_COVERED)
        assert diff_runs(baseline, _manifest()).objectives == {}
        assert diff_runs(
            baseline, _manifest(provenance={"Tiny": {}})
        ).objectives == {}

    def test_uncovered_status_still_counts_as_lost(self):
        flipped = dict(_COVERED)
        flipped["D:is_high:true"] = {"status": "uncovered", "attempts": {},
                                     "skips": {}, "trail": []}
        diff = diff_runs(
            _provenance_manifest(_COVERED), _provenance_manifest(flipped)
        )
        assert diff.objectives == {("Tiny", "STCG"): ["D:is_high:true"]}


class TestLoadRun:
    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ReproError, match="schema"):
            load_run(str(path))

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_run(str(tmp_path / "nope.json"))

    def test_jsonl_and_manifest_agree(self, tmp_path):
        """A diff of the event log against its own manifest is empty."""
        events = str(tmp_path / "run.jsonl")
        api.run_experiment(
            models=[TINY], tools=("STCG",), budget_s=2.0, repetitions=1,
            seed=0, events_out=events, trace=True,
        )
        manifest = events.replace(".jsonl", ".manifest.json")
        diff = diff_runs(load_run(events), load_run(manifest))
        assert find_regressions(diff) == []
        assert diff.counters == {}


class TestDiffCli:
    def _run(self, tmp_path):
        events = str(tmp_path / "run.jsonl")
        api.run_experiment(
            models=[TINY], tools=("STCG",), budget_s=2.0, repetitions=1,
            seed=0, events_out=events, trace=True,
        )
        return events.replace(".jsonl", ".manifest.json")

    def test_self_diff_exits_zero(self, tmp_path, capsys):
        manifest = self._run(tmp_path)
        code = cli.main(["diff", manifest, manifest, "--fail-on-regression"])
        assert code == 0
        assert "no regressions detected" in capsys.readouterr().out

    def test_doctored_copy_fails_the_gate(self, tmp_path, capsys):
        manifest = self._run(tmp_path)
        doctored = str(tmp_path / "doctored.manifest.json")
        document = json.loads(open(manifest).read())
        for per_tool in document["coverage"].values():
            for agg in per_tool.values():
                agg["decision"] = 0.0
        document["failed"] = document.get("failed", 0) + 1
        with open(doctored, "w") as handle:
            json.dump(document, handle)
        assert cli.main(["diff", manifest, doctored]) == 0  # report only
        code = cli.main(["diff", manifest, doctored, "--fail-on-regression"])
        assert code == 1
        captured = capsys.readouterr()
        assert "[regression]" in captured.out
        assert "regression(s)" in captured.err


def _events(*extra):
    base = [
        {"event": "matrix_started", "seq": 0, "t": 0.0,
         "models": ["Tiny"], "tools": ["STCG"], "budget_s": 2.0,
         "repetitions": 2, "workers": 2},
        {"event": "cell_started", "seq": 1, "t": 0.0, "cell": 0,
         "model": "Tiny", "tool": "STCG", "repetition": 0},
        {"event": "cell_started", "seq": 2, "t": 0.0, "cell": 1,
         "model": "Tiny", "tool": "STCG", "repetition": 1},
    ]
    base.extend(extra)
    return base


def _beat(cell, phase="solve_scan", **extra):
    beat = {
        "schema": "repro.heartbeat/1", "pid": 1, "n": 0, "cell": cell,
        "model": "Tiny", "tool": "STCG", "repetition": cell,
        "phase": phase, "tree_nodes": 5, "solver_calls": 3,
        "coverage": 0.5, "rss_kb": 1000,
    }
    beat.update(extra)
    return beat


class TestTail:
    def test_statuses(self):
        events = _events(
            {"event": "cell_finished", "seq": 3, "t": 1.0, "cell": 0,
             "model": "Tiny", "tool": "STCG", "repetition": 0,
             "decision": 1.0},
        )
        rows = cell_rows(events, [_beat(1)])
        assert [r["status"] for r in rows] == ["ok", "running"]
        assert rows[0]["coverage"] == 1.0
        assert rows[1]["phase"] == "solve_scan"
        assert rows[1]["rss_kb"] == 1000

    def test_stall_flag_outranks_running(self):
        events = _events(
            {"event": "cell_stalled", "seq": 3, "t": 5.0, "cell": 1,
             "model": "Tiny", "tool": "STCG", "repetition": 1,
             "phase": "solve_scan", "quiet_s": 4.0},
        )
        rows = cell_rows(events, [_beat(1)])
        assert rows[1]["status"] == "stalled"
        # ...but a terminal event wins over a stale stall flag.
        events.append({"event": "cell_failed", "seq": 4, "t": 6.0,
                       "cell": 1, "model": "Tiny", "tool": "STCG",
                       "repetition": 1, "kind": "timeout", "message": "x"})
        rows = cell_rows(events, [_beat(1)])
        assert rows[1]["status"] == "failed"

    def test_queued_without_beats(self):
        rows = cell_rows(_events(), [])
        assert [r["status"] for r in rows] == ["queued", "queued"]

    def test_render_tail_board(self):
        events = _events(
            {"event": "cell_finished", "seq": 3, "t": 1.0, "cell": 0,
             "model": "Tiny", "tool": "STCG", "repetition": 0,
             "decision": 1.0},
            {"event": "cell_stalled", "seq": 4, "t": 5.0, "cell": 1,
             "model": "Tiny", "tool": "STCG", "repetition": 1,
             "phase": "solve_scan", "quiet_s": 4.0},
        )
        text = render_tail(events, [_beat(1)])
        assert "live: 1/2 cells done, 1 stall flag(s)" in text
        assert "stalled" in text and "ok" in text
        assert "50.0%" in text  # live coverage from the beat

    def test_cli_tail_end_to_end(self, tmp_path, capsys):
        events = str(tmp_path / "run.jsonl")
        api.run_experiment(
            models=[TINY], tools=("STCG",), budget_s=2.0, repetitions=2,
            seed=0, events_out=events, heartbeat_s=0.05,
        )
        assert cli.main(["tail", events]) == 0
        out = capsys.readouterr().out
        assert "finished: 2/2 cells done" in out
        assert "Tiny" in out and "ok" in out
