"""Shared fixtures: small models reused across the suite."""

import random

import pytest

from repro.expr.types import ArrayType, BOOL, INT
from repro.model import ModelBuilder


@pytest.fixture
def rng():
    return random.Random(12345)


def build_counter_model():
    """A 2-input model with a data-store counter and a threshold switch."""
    b = ModelBuilder("Counter")
    tick = b.inport("tick", BOOL)
    amount = b.inport("amount", INT, 0, 10)
    b.data_store("count", INT, 0)
    count = b.store_read("count")
    new_count = b.switch(tick, b.add(count, amount), count, name="tick_gate")
    b.store_write("count", new_count)
    high = b.compare(new_count, ">", 15, name="is_high")
    level = b.switch(high, b.const(2), b.const(1), name="level")
    b.outport("level", level)
    b.outport("count", new_count)
    return b.compile()


def build_queue_model(depth=3):
    """An opcode-driven queue model (miniature CPUTask)."""
    b = ModelBuilder("Queue")
    op = b.inport("op", INT, 0, 3)
    key = b.inport("key", INT, 1, 31)
    b.data_store("keys", ArrayType(INT, depth), (0,) * depth)
    b.data_store("used", ArrayType(INT, depth), (0,) * depth)
    keys = b.store_read("keys")
    used = b.store_read("used")
    sc = b.switch_case(op, cases=[[1], [2]], has_default=True)
    with sc.case(0):  # push into first free slot
        free = b.const(depth)
        for i in reversed(range(depth)):
            is_free = b.compare(b.select(used, b.const(i), depth), "==", 0)
            free = b.switch(is_free, b.const(i), free)
        full = b.compare(free, "==", depth)
        slot = b.min(free, b.const(depth - 1))
        can = b.logic_not(full)
        nk = b.array_update(keys, slot, key, depth)
        nu = b.array_update(used, slot, b.const(1), depth)
        b.store_write("keys", b.switch(can, nk, keys))
        b.store_write("used", b.switch(can, nu, used))
        push_ok = b.sub_output(b.switch(full, b.const(0), b.const(1)), init=0)
    with sc.case(1):  # pop matching key
        hit = b.const(depth)
        for i in reversed(range(depth)):
            u = b.compare(b.select(used, b.const(i), depth), "==", 1)
            k = b.compare(b.select(keys, b.const(i), depth), "==", key)
            match = b.logic("and", u, k)
            hit = b.switch(match, b.const(i), hit)
        miss = b.compare(hit, "==", depth)
        slot = b.min(hit, b.const(depth - 1))
        nu = b.array_update(used, slot, b.const(0), depth)
        b.store_write("used", b.switch(b.logic_not(miss), nu, used))
        pop_ok = b.sub_output(b.switch(miss, b.const(0), b.const(1)), init=0)
    b.outport("push_ok", push_ok)
    b.outport("pop_ok", pop_ok)
    return b.compile()


def build_crashy_model():
    """A builder that always raises (crash-injection fixture)."""
    raise RuntimeError("injected model-build crash")


def build_sleepy_model():
    """A builder that hangs long enough to trip any sane cell timeout."""
    import time

    time.sleep(5.0)
    return build_counter_model()


@pytest.fixture
def counter_model():
    return build_counter_model()


@pytest.fixture
def queue_model():
    return build_queue_model()
