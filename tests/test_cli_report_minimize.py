"""Tests for the CLI, the coverage report renderer and suite minimization."""

import pytest

from repro.cli import main
from repro.core import StcgConfig, StcgGenerator
from repro.core.minimize import goals_of_case, minimize_suite
from repro.coverage.report import (
    decision_report,
    full_report,
    mcdc_report,
    uncovered_report,
)

from tests.conftest import build_queue_model


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "CPUTask" in out and "TCP" in out

    def test_info(self, capsys):
        assert main(["info", "LEDLC"]) == 0
        out = capsys.readouterr().out
        assert "dead branches" in out
        assert "$store.mode" in out

    def test_info_unknown_model(self, capsys):
        assert main(["info", "bogus"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "#Branch(paper)" in out

    def test_generate_with_all_flags(self, capsys, tmp_path):
        out_file = tmp_path / "suite.txt"
        code = main(
            [
                "generate", "AFC", "--tool", "STCG", "--budget", "3",
                "--seed", "1", "--out", str(out_file), "--minimize",
                "--report",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "STCG on AFC" in out
        assert "minimized:" in out
        assert "== summary ==" in out
        assert out_file.exists()
        assert "test suite for AFC" in out_file.read_text()

    def test_generate_without_sim_kernel(self, capsys):
        code = main(
            ["generate", "AFC", "--budget", "2", "--no-sim-kernel"]
        )
        assert code == 0
        assert "STCG on AFC" in capsys.readouterr().out

    def test_kernel_flag_rejected_for_other_tools(self, capsys):
        code = main(
            [
                "generate", "AFC", "--tool", "SimCoTest",
                "--budget", "2", "--no-sim-kernel",
            ]
        )
        assert code == 1
        assert "STCG-family tools only" in capsys.readouterr().err

    def test_table1(self, capsys):
        assert main(["table1", "--budget", "5"]) == 0
        assert "B1" in capsys.readouterr().out

    def test_fig3(self, capsys):
        assert main(["fig3", "--budget", "5"]) == 0
        assert "state tree" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation", "hybrid", "AFC", "--budget", "2"]) == 0
        assert "random-warmup" in capsys.readouterr().out


class TestReports:
    @pytest.fixture
    def collector(self):
        compiled = build_queue_model()
        generator = StcgGenerator(compiled, StcgConfig(budget_s=5, seed=0))
        generator.run()
        return generator.collector

    def test_decision_report_marks(self, collector):
        text = decision_report(collector)
        assert "[x]" in text

    def test_uncovered_report_all_covered(self, collector):
        assert uncovered_report(collector) == "all branches covered"

    def test_uncovered_report_with_dead_annotation(self):
        from repro.coverage import CoverageCollector

        compiled = build_queue_model()
        empty = CoverageCollector(compiled.registry)  # nothing covered yet
        label = empty.uncovered_branches()[0].label
        text = uncovered_report(empty, known_dead=[label])
        assert "documented dead logic" in text

    def test_mcdc_report(self, collector):
        text = mcdc_report(collector)
        assert "atoms" in text

    def test_full_report_sections(self, collector):
        text = full_report(collector)
        for section in ("== summary ==", "== decisions ==", "== mcdc =="):
            assert section in text


class TestMinimize:
    def run_generation(self):
        compiled = build_queue_model()
        generator = StcgGenerator(compiled, StcgConfig(budget_s=8, seed=0))
        result = generator.run()
        return compiled, result

    def test_goals_of_case_nonempty(self):
        compiled, result = self.run_generation()
        goals = goals_of_case(build_queue_model(), result.suite.cases[0])
        assert goals

    def test_minimization_preserves_coverage(self):
        compiled, result = self.run_generation()
        reduced = minimize_suite(build_queue_model(), result.suite)
        original = result.suite.replay(build_queue_model())
        replayed = reduced.suite.replay(build_queue_model())
        assert replayed.decision_coverage() == original.decision_coverage()
        assert replayed.condition_coverage() == original.condition_coverage()
        assert replayed.mcdc_coverage() == original.mcdc_coverage()

    def test_minimization_never_grows(self):
        compiled, result = self.run_generation()
        reduced = minimize_suite(build_queue_model(), result.suite)
        assert reduced.kept_cases <= reduced.original_cases
        assert 0.0 <= reduced.reduction <= 1.0

    def test_empty_suite(self):
        from repro.core.testcase import TestSuite

        reduced = minimize_suite(build_queue_model(), TestSuite("Queue", ["op", "key"]))
        assert reduced.kept_cases == 0
        assert reduced.reduction == 0.0
