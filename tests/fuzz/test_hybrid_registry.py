"""The hybrid acceptance pins, on the paper's registry models.

Both tests drive the generators with an injected tick clock, so "budget"
is virtual seconds — the outcomes are a pure function of the seed and
run bit-identically on any machine.
"""

import itertools

from repro.core.config import FuzzConfig, StcgConfig
from repro.core.stcg import StcgGenerator
from repro.fuzz.engine import HybridGenerator
from repro.models.registry import BENCHMARKS, get_benchmark


def tick_clock(step=0.01):
    ticks = itertools.count()
    return lambda: next(ticks) * step


def test_hybrid_covers_objectives_stcg_leaves_uncovered():
    """The tentpole's acceptance pin: at an equal (virtual) budget on
    UTPC, hybrid covers objectives pure STCG's solver never reaches —
    fuzz-discovered states unlock them (ISSUE 9 acceptance criteria)."""
    config = StcgConfig(
        seed=0, budget_s=1.0, provenance=True,
        fuzz=FuzzConfig(executions=300),
    )
    stcg = StcgGenerator(
        get_benchmark("UTPC").build(), config, clock=tick_clock()
    ).run()
    uncovered = {
        oid for oid, entry in stcg.provenance["objectives"].items()
        if entry["status"] == "uncovered"
    }
    assert uncovered, "budget too generous: pure STCG covered everything"

    hybrid = HybridGenerator(
        get_benchmark("UTPC").build(), config, clock=tick_clock()
    ).run()
    covered = {
        oid for oid, entry in hybrid.provenance["objectives"].items()
        if entry["status"] == "covered"
    }
    gained = uncovered & covered
    # Measured: 16 of STCG's 50 uncovered objectives at this seed/budget.
    assert len(gained) >= 1, (uncovered, covered)
    assert hybrid.stats["fuzz_targets"] > 0
    assert hybrid.stats["fuzz_targets_covered"] > 0


def test_hybrid_never_regresses_stcg_on_all_registry_models():
    """Equal budget, equal seed: Hybrid >= pure STCG on every metric of
    every registry model (the "never regress" pin)."""
    for bench in BENCHMARKS:
        config = StcgConfig(
            seed=0, budget_s=8.0, provenance=False,
            fuzz=FuzzConfig(executions=400),
        )
        stcg = StcgGenerator(
            bench.build(), config, clock=tick_clock()
        ).run()
        hybrid = HybridGenerator(
            bench.build(), config, clock=tick_clock()
        ).run()
        label = (
            f"{bench.name}: STCG D={stcg.decision:.3f} C={stcg.condition:.3f}"
            f" M={stcg.mcdc:.3f} vs Hybrid D={hybrid.decision:.3f}"
            f" C={hybrid.condition:.3f} M={hybrid.mcdc:.3f}"
        )
        assert hybrid.decision >= stcg.decision, label
        assert hybrid.condition >= stcg.condition, label
        assert hybrid.mcdc >= stcg.mcdc, label
