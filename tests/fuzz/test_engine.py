"""Fuzz/Hybrid generator behavior on the small fixture models."""

import itertools
import json

from repro import api
from repro.core.config import FuzzConfig, StcgConfig
from repro.fuzz.corpus import CORPUS_SCHEMA
from repro.fuzz.engine import FuzzGenerator, HybridGenerator, derive_fuzz_seed
from repro.models.registry import BenchmarkModel
from repro.telemetry import read_events
from tests.conftest import build_counter_model, build_queue_model


def tick_clock(step=0.01):
    """A deterministic clock: each call advances ``step`` virtual seconds."""
    ticks = itertools.count()
    return lambda: next(ticks) * step


def _config(**fuzz_kwargs):
    fuzz_kwargs.setdefault("executions", 150)
    return StcgConfig(
        seed=0, budget_s=60.0, provenance=True, fuzz=FuzzConfig(**fuzz_kwargs)
    )


class TestDeriveFuzzSeed:
    def test_stable(self):
        assert derive_fuzz_seed(0) == derive_fuzz_seed(0)

    def test_distinct_per_master_seed(self):
        seeds = {derive_fuzz_seed(n) for n in range(100)}
        assert len(seeds) == 100

    def test_isolated_from_the_master_seed(self):
        # The fuzz stream must not be STCG's stream: the derived seed is a
        # domain-separated hash, never the master seed itself.
        for master in range(100):
            assert derive_fuzz_seed(master) != master

    def test_fits_63_bits(self):
        assert 0 <= derive_fuzz_seed(2**63) < 2**63


class TestFuzzGenerator:
    def test_covers_the_counter_model(self):
        result = FuzzGenerator(
            build_counter_model(), _config(), clock=tick_clock()
        ).run()
        assert result.tool == "Fuzz"
        assert result.decision == 1.0
        assert len(result.suite) > 0
        assert all(c.origin == "fuzz" for c in result.suite)

    def test_fixed_seed_runs_are_identical(self):
        def run():
            return FuzzGenerator(
                build_queue_model(), _config(), clock=tick_clock()
            ).run()

        a, b = run(), run()
        assert a.summary.as_dict() == b.summary.as_dict()
        assert a.stats == b.stats
        assert [c.inputs for c in a.suite] == [c.inputs for c in b.suite]

    def test_execution_budget_is_binding(self):
        result = FuzzGenerator(
            build_queue_model(),
            StcgConfig(
                seed=0, budget_s=60.0, stop_on_full_coverage=False,
                fuzz=FuzzConfig(executions=40),
            ),
            clock=tick_clock(),
        ).run()
        assert result.stats["fuzz_executions"] == 40

    def test_stats_carry_the_fuzz_counters(self):
        result = FuzzGenerator(
            build_counter_model(), _config(), clock=tick_clock()
        ).run()
        for key in ("fuzz_executions", "fuzz_retained", "fuzz_rejected",
                    "fuzz_corpus_size", "fuzz_seed_entries", "fuzz_steps",
                    "fuzz_tree_nodes", "fuzz_wall_s"):
            assert key in result.stats, key
        assert result.stats["fuzz_corpus_size"] > 0

    def test_provenance_attributes_fuzz_origin(self):
        result = FuzzGenerator(
            build_counter_model(), _config(), clock=tick_clock()
        ).run()
        snapshot = result.provenance
        assert snapshot["tool"] == "Fuzz"
        origins = {
            entry.get("origin")
            for entry in snapshot["objectives"].values()
            if entry.get("status") == "covered"
        }
        assert origins == {"fuzz"}

    def test_corpus_out_writes_the_artifact(self, tmp_path):
        path = tmp_path / "corpus.json"
        FuzzGenerator(
            build_counter_model(),
            _config(corpus_out=str(path)),
            clock=tick_clock(),
        ).run()
        document = json.loads(path.read_text())
        assert document["schema"] == CORPUS_SCHEMA
        assert len(document["entries"]) > 0


class TestHybridGenerator:
    def test_never_regresses_stcg_on_the_counter_model(self):
        from repro.core.stcg import StcgGenerator

        config = _config()
        stcg = StcgGenerator(
            build_counter_model(), config, clock=tick_clock()
        ).run()
        hybrid = HybridGenerator(
            build_counter_model(), config, clock=tick_clock()
        ).run()
        assert hybrid.tool == "Hybrid"
        assert hybrid.decision >= stcg.decision
        assert hybrid.condition >= stcg.condition
        assert hybrid.mcdc >= stcg.mcdc

    def test_fixed_seed_runs_are_identical(self):
        def run():
            return HybridGenerator(
                build_queue_model(), _config(), clock=tick_clock()
            ).run()

        a, b = run(), run()
        assert a.summary.as_dict() == b.summary.as_dict()
        assert a.stats == b.stats
        assert [c.inputs for c in a.suite] == [c.inputs for c in b.suite]


class TestApiIntegration:
    def _bench(self, name="Tiny"):
        return BenchmarkModel(name, "counter fixture", build_counter_model, 0, 0)

    def test_generate_dispatches_fuzz_tool(self):
        result = api.generate(
            self._bench(), tool="Fuzz", budget_s=30.0, seed=0,
            config=_config(),
        )
        assert result.tool == "Fuzz"
        assert result.stats["fuzz_executions"] > 0

    def test_fuzz_stats_event_is_emitted(self, tmp_path):
        events_path = tmp_path / "fuzz.jsonl"
        api.generate(
            self._bench(), tool="Fuzz", budget_s=30.0, seed=0,
            config=_config(), events_out=str(events_path),
        )
        events = read_events(str(events_path))
        fuzz_events = [e for e in events if e["event"] == "fuzz_stats"]
        assert len(fuzz_events) == 1
        payload = fuzz_events[0]
        assert payload["tool"] == "Fuzz"
        assert payload["executions"] > 0
        assert payload["corpus_size"] > 0
        assert "execs_per_s" in payload

    def test_manifest_gains_the_fuzz_section(self, tmp_path):
        events_path = tmp_path / "fuzz.jsonl"
        api.generate(
            self._bench(), tool="Fuzz", budget_s=30.0, seed=0,
            config=_config(), events_out=str(events_path),
        )
        manifest = json.loads(
            (tmp_path / "fuzz.manifest.json").read_text()
        )
        assert manifest["fuzz"]["cells"] == 1
        assert manifest["fuzz"]["executions"] > 0
