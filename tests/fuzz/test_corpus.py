"""Corpus retention: new-coverage admission, monotonicity, round-trip."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz.corpus import CORPUS_SCHEMA, Corpus

SEQ_A = [{"tick": True, "amount": 3}]
SEQ_B = [{"tick": False, "amount": 0}, {"tick": True, "amount": 9}]


class TestRetention:
    def test_new_coverage_is_retained(self):
        corpus = Corpus()
        entry = corpus.consider(SEQ_A, ["D:a:true"], origin="perturb")
        assert entry is not None
        assert corpus.size == 1
        assert corpus.covered == {"D:a:true"}

    def test_equal_coverage_duplicate_rejected(self):
        corpus = Corpus()
        corpus.consider(SEQ_A, ["D:a:true"], origin="perturb")
        duplicate = corpus.consider(SEQ_B, ["D:a:true"], origin="splice")
        assert duplicate is None
        assert corpus.size == 1
        assert corpus.rejected == 1

    def test_subset_coverage_rejected(self):
        corpus = Corpus()
        corpus.consider(SEQ_A, ["D:a:true", "C:b:c0=T"], origin="perturb")
        assert corpus.consider(SEQ_B, ["C:b:c0=T"], origin="splice") is None

    def test_partial_novelty_stores_only_the_new_set(self):
        corpus = Corpus()
        corpus.consider(SEQ_A, ["D:a:true"], origin="perturb")
        entry = corpus.consider(
            SEQ_B, ["D:a:true", "D:a:false"], origin="splice"
        )
        assert entry is not None
        assert entry.objectives == frozenset({"D:a:false"})

    def test_seeds_are_admitted_unconditionally(self):
        corpus = Corpus()
        corpus.add_seed(SEQ_A, ["D:a:true"], origin="suite")
        seed = corpus.add_seed(SEQ_B, ["D:a:true"], origin="suite")
        # Even with zero new coverage a seed enters (its original run
        # earned it); only consider() applies the novelty filter.
        assert corpus.size == 2
        assert seed.objectives == frozenset({"D:a:true"})

    def test_pick_on_empty_corpus_raises(self):
        with pytest.raises(IndexError):
            Corpus().pick(random.Random(0))


class TestMonotonicity:
    def test_entries_are_never_evicted(self):
        """A retained entry survives any stream of later candidates."""
        corpus = Corpus()
        first = corpus.consider(SEQ_A, ["D:a:true"], origin="perturb")
        for n in range(50):
            corpus.consider(SEQ_B, ["D:a:true"], origin="splice")
            corpus.consider(SEQ_B, [f"D:x{n}:true"], origin="splice")
        assert corpus.entries[0] is first
        assert [e.entry_id for e in corpus.entries] == list(
            range(corpus.size)
        )

    def test_first_cover_owner_never_reassigned(self):
        corpus = Corpus()
        first = corpus.consider(SEQ_A, ["D:a:true"], origin="perturb")
        corpus.add_seed(SEQ_B, ["D:a:true"], origin="suite")
        assert corpus.owners["D:a:true"] == first.entry_id

    def test_covered_union_is_monotone(self):
        corpus = Corpus()
        seen = set()
        rng = random.Random(0)
        for n in range(100):
            objectives = {f"D:o{rng.randrange(30)}:true"}
            corpus.consider(SEQ_A, objectives, origin="perturb")
            seen |= set(corpus.covered)
            assert corpus.covered == seen  # never shrinks


_objective_ids = st.sets(
    st.from_regex(r"[DCM]:[a-z]{1,8}:[a-z0-9=]{1,6}", fullmatch=True),
    min_size=1,
    max_size=5,
)
_sequences = st.lists(
    st.fixed_dictionaries(
        {"tick": st.booleans(), "amount": st.integers(0, 10)}
    ),
    min_size=1,
    max_size=6,
)


class TestSerialization:
    @settings(max_examples=50, deadline=None)
    @given(cases=st.lists(st.tuples(_sequences, _objective_ids), max_size=8))
    def test_json_round_trip(self, cases):
        corpus = Corpus()
        for sequence, objectives in cases:
            corpus.consider(sequence, objectives, origin="perturb")
        restored = Corpus.from_json(corpus.to_json())
        assert restored.covered == corpus.covered
        assert restored.owners == corpus.owners
        assert restored.rejected == corpus.rejected
        assert [
            (e.entry_id, e.sequence, e.objectives, e.origin, e.parent_id)
            for e in restored.entries
        ] == [
            (e.entry_id, e.sequence, e.objectives, e.origin, e.parent_id)
            for e in corpus.entries
        ]

    def test_from_json_rejects_other_schemas(self):
        with pytest.raises(ValueError, match=CORPUS_SCHEMA):
            Corpus.from_json('{"schema": "repro.metrics/1", "entries": []}')
