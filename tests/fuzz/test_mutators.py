"""Mutator determinism and validity: same seed, same mutation stream."""

import random

from hypothesis import given, settings, strategies as st

from repro.fuzz.mutators import MUTATION_OPS, SequenceMutator
from tests.conftest import build_counter_model

MAX_LENGTH = 12


def _mutator(seed, max_length=MAX_LENGTH):
    compiled = build_counter_model()
    return SequenceMutator(
        compiled.inports, random.Random(seed), max_length
    )


def _start_sequence(seed, length=6):
    from repro.model.inputs import random_sequence

    compiled = build_counter_model()
    return random_sequence(compiled.inports, random.Random(seed), length)


def _stream(seed, rounds=200):
    """The (op, sequence) stream a seeded mutator produces."""
    mutator = _mutator(seed)
    current = _start_sequence(seed)
    other = _start_sequence(seed + 1)
    out = []
    for _ in range(rounds):
        op, current = mutator.mutate(current, other)
        out.append((op, [dict(step) for step in current]))
    return out


class TestDeterminism:
    def test_same_seed_identical_stream(self):
        assert _stream(7) == _stream(7)

    def test_different_seed_different_stream(self):
        assert _stream(7) != _stream(8)

    def test_all_operators_appear(self):
        ops = {op for op, _ in _stream(0)}
        assert ops == set(MUTATION_OPS)


class TestValidity:
    def test_lengths_stay_in_bounds(self):
        for _, sequence in _stream(3):
            assert 1 <= len(sequence) <= MAX_LENGTH

    def test_steps_are_fresh_dicts(self):
        # Mutating the output must never reach back into the input: the
        # corpus hands out its retained sequences as mutation parents.
        mutator = _mutator(0)
        original = _start_sequence(0)
        snapshot = [dict(step) for step in original]
        _, mutated = mutator.mutate(original)
        for step in mutated:
            step.clear()
        assert original == snapshot

    def test_crossover_needs_other(self):
        mutator = _mutator(0)
        for _ in range(50):
            op, _ = mutator.mutate(_start_sequence(1), other=None)
            assert op != "crossover"

    def test_truncate_needs_two_steps(self):
        mutator = _mutator(0)
        single = _start_sequence(1, length=1)
        for _ in range(50):
            op, mutated = mutator.mutate(single, other=None)
            assert op != "truncate"
            assert len(mutated) >= 1


class TestHypothesisRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           rounds=st.integers(min_value=1, max_value=30))
    def test_seeded_streams_replay_exactly(self, seed, rounds):
        """Any seed's mutation stream replays bit-identically."""
        assert _stream(seed, rounds) == _stream(seed, rounds)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_values_respect_inport_domains(self, seed):
        """Mutated values stay inside each inport's declared domain."""
        from repro.expr.types import BOOL, INT

        compiled = build_counter_model()
        specs = {spec.name: spec for spec in compiled.inports}
        for _, sequence in _stream(seed, rounds=20):
            for step in sequence:
                for name, value in step.items():
                    spec = specs[name]
                    if spec.ty is BOOL:
                        assert isinstance(value, bool)
                    elif spec.ty is INT:
                        assert isinstance(value, int)
                        if spec.lo is not None:
                            assert value >= spec.lo
                        if spec.hi is not None:
                            assert value <= spec.hi
