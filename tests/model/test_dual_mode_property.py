"""Property test: concrete and symbolic execution agree on every model.

The one-step encoder's soundness rests on the fact that running the model
symbolically with *constant* inputs produces exactly the concrete result.
This file checks that on randomly generated states and inputs for the
fixture models and all eight benchmarks (single random spot per model to
keep runtime sane — the dedicated encoder tests hammer the small models).
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coverage import CoverageCollector
from repro.model import Simulator, execute_step, symbolic_context
from repro.model.context import concrete_context
from repro.model.inputs import random_input
from repro.models import BENCHMARKS

from tests.conftest import build_counter_model, build_queue_model


def both_modes_agree(compiled, state_env, inputs):
    concrete_ctx = concrete_context(dict(inputs), dict(state_env), None, 0)
    concrete_out = execute_step(compiled, concrete_ctx)
    symbolic_ctx = symbolic_context(dict(inputs), dict(state_env), 0)
    symbolic_out = execute_step(compiled, symbolic_ctx)

    def plain(value):
        if hasattr(value, "const_value"):
            return value.const_value()
        return value

    for name, value in concrete_out.items():
        other = plain(symbolic_out[name])
        if isinstance(value, float):
            assert math.isclose(value, other, rel_tol=1e-9, abs_tol=1e-9), name
        else:
            assert value == other, name
    for path, value in concrete_ctx.next_state.items():
        other = plain(symbolic_ctx.next_state[path])
        if isinstance(value, float):
            assert math.isclose(value, other, rel_tol=1e-9, abs_tol=1e-9), path
        elif isinstance(value, tuple):
            assert tuple(value) == tuple(other), path
        else:
            assert value == other, path


@given(seed=st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_queue_model_dual_mode(seed):
    compiled = build_queue_model()
    rng = random.Random(seed)
    simulator = Simulator(compiled, CoverageCollector(compiled.registry))
    for _ in range(rng.randint(0, 10)):
        simulator.step(random_input(compiled.inports, rng))
    state_env = dict(simulator.get_state().values)
    both_modes_agree(compiled, state_env, random_input(compiled.inports, rng))


@given(seed=st.integers(0, 100_000))
@settings(max_examples=30, deadline=None)
def test_counter_model_dual_mode(seed):
    compiled = build_counter_model()
    rng = random.Random(seed)
    simulator = Simulator(compiled, CoverageCollector(compiled.registry))
    for _ in range(rng.randint(0, 6)):
        simulator.step(random_input(compiled.inports, rng))
    state_env = dict(simulator.get_state().values)
    both_modes_agree(compiled, state_env, random_input(compiled.inports, rng))


@pytest.mark.parametrize("model", BENCHMARKS, ids=lambda m: m.name)
def test_benchmarks_dual_mode(model):
    compiled = model.build()
    rng = random.Random(2024)
    simulator = Simulator(compiled, CoverageCollector(compiled.registry))
    for _ in range(12):
        simulator.step(random_input(compiled.inports, rng))
    state_env = dict(simulator.get_state().values)
    for _ in range(3):
        both_modes_agree(
            compiled, state_env, random_input(compiled.inports, rng)
        )
