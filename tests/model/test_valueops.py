"""Tests for the concrete / symbolic operation tables."""

import math

import pytest

from repro.expr.ast import Const, Expr, Var
from repro.expr.types import INT
from repro.model.valueops import CONCRETE, SYMBOLIC


class TestConcreteTable:
    @pytest.mark.parametrize(
        "op,args,expected",
        [
            ("add", (2, 3), 5),
            ("sub", (2, 3), -1),
            ("mul", (2, 3), 6),
            ("idiv", (-7, 2), -3),
            ("mod", (-7, 2), -1),
            ("minimum", (2, 3), 2),
            ("maximum", (2, 3), 3),
            ("absolute", (-4,), 4),
            ("neg", (4,), -4),
            ("saturate", (9, 0, 5), 5),
            ("lt", (1, 2), True),
            ("ge", (1, 2), False),
            ("eq", (2, 2), True),
            ("ne", (2, 2), False),
            ("land", (True, False), False),
            ("lor", (True, False), True),
            ("lxor", (True, True), False),
            ("lnot", (False,), True),
            ("ite", (True, 1, 2), 1),
            ("ite", (False, 1, 2), 2),
            ("select", ((5, 6, 7), 1), 6),
            ("to_int", (2.9,), 2),
            ("to_real", (3,), 3.0),
            ("to_bool", (0,), False),
        ],
    )
    def test_operations(self, op, args, expected):
        assert getattr(CONCRETE, op)(*args) == expected

    def test_div_saturates(self):
        assert CONCRETE.div(1.0, 0.0) == math.inf

    def test_store_copies(self):
        original = (1, 2, 3)
        stored = CONCRETE.store(original, 1, 9)
        assert stored == (1, 9, 3)
        assert original == (1, 2, 3)

    def test_flags(self):
        assert CONCRETE.symbolic is False
        assert CONCRETE.abstract is False
        assert CONCRETE.is_true(1) is True
        assert CONCRETE.is_concrete(object()) is True


class TestSymbolicTable:
    I = Var("i", INT)

    def test_builds_expressions(self):
        result = SYMBOLIC.add(self.I, 1)
        assert isinstance(result, Expr)

    def test_folds_constants(self):
        result = SYMBOLIC.add(2, 3)
        assert isinstance(result, Const)
        assert result.const_value() == 5

    def test_flags(self):
        assert SYMBOLIC.symbolic is True
        assert SYMBOLIC.abstract is False

    def test_is_true_on_constants(self):
        assert SYMBOLIC.is_true(Const(True)) is True
        assert SYMBOLIC.is_true(True) is True

    def test_is_true_on_symbolic_raises(self):
        from repro.errors import ExprError

        with pytest.raises(ExprError):
            SYMBOLIC.is_true(Var("b", INT))

    def test_is_concrete(self):
        assert SYMBOLIC.is_concrete(Const(5)) is True
        assert SYMBOLIC.is_concrete(self.I) is False
        assert SYMBOLIC.is_concrete(3) is True

    def test_mirror_of_concrete_semantics(self):
        """Each symbolic op folded on constants equals the concrete op."""
        samples = [(-7, 3), (4, -2), (0, 5)]
        for op in ("add", "sub", "mul", "idiv", "mod", "minimum", "maximum"):
            for a, b in samples:
                concrete = getattr(CONCRETE, op)(a, b)
                symbolic = getattr(SYMBOLIC, op)(a, b)
                assert symbolic.const_value() == concrete, op
        for op in ("lt", "le", "gt", "ge", "eq", "ne"):
            for a, b in samples:
                concrete = getattr(CONCRETE, op)(a, b)
                symbolic = getattr(SYMBOLIC, op)(a, b)
                assert symbolic.const_value() == concrete, op
