"""Per-block tests: concrete semantics plus concrete/symbolic agreement.

Each block family is exercised through a minimal model.  The
``assert_dual_mode`` helper executes the model concretely and symbolically
(with the same inputs lifted to constants) and demands identical outputs —
the bedrock property behind the one-step encoder.
"""

import math

import pytest

from repro.coverage import CoverageCollector
from repro.errors import ModelError
from repro.expr.types import BOOL, INT, REAL
from repro.model import ModelBuilder, Simulator, execute_step, symbolic_context
from repro.model.context import concrete_context


def assert_dual_mode(compiled, inputs, state=None):
    """Concrete and symbolic-on-constants execution must agree."""
    state_env = dict(state) if state else compiled.initial_state()
    concrete_ctx = concrete_context(dict(inputs), dict(state_env), None, 0)
    concrete_out = execute_step(compiled, concrete_ctx)
    symbolic_ctx = symbolic_context(dict(inputs), dict(state_env), 0)
    symbolic_out = execute_step(compiled, symbolic_ctx)
    for name, value in concrete_out.items():
        symbolic_value = symbolic_out[name]
        if hasattr(symbolic_value, "const_value"):
            symbolic_value = symbolic_value.const_value()
        if isinstance(value, float):
            assert math.isclose(value, symbolic_value, rel_tol=1e-9), name
        else:
            assert value == symbolic_value, name
    # Next-state values must agree too.
    for path, value in concrete_ctx.next_state.items():
        symbolic_value = symbolic_ctx.next_state[path]
        if hasattr(symbolic_value, "const_value"):
            symbolic_value = symbolic_value.const_value()
        assert value == pytest.approx(symbolic_value), path
    return concrete_out


def single_output(build, inputs, state=None):
    compiled = build
    outputs = assert_dual_mode(compiled, inputs, state)
    return outputs["y"]


class TestMathBlocks:
    def _model(self, fn):
        b = ModelBuilder("M")
        u = b.inport("u", REAL, -10, 10)
        v = b.inport("v", REAL, -10, 10)
        b.outport("y", fn(b, u, v))
        return b.compile()

    def test_gain(self):
        c = self._model(lambda b, u, v: b.gain(u, 3.0))
        assert single_output(c, {"u": 2.0, "v": 0.0}) == 6.0

    def test_bias(self):
        c = self._model(lambda b, u, v: b.bias(u, 1.5))
        assert single_output(c, {"u": 2.0, "v": 0.0}) == 3.5

    def test_sum_signs(self):
        b = ModelBuilder("M")
        u = b.inport("u", REAL)
        v = b.inport("v", REAL)
        w = b.inport("w", REAL)
        from repro.model.blocks import Sum

        s = Sum("s", "+-+")
        b.model.add_block(s)
        b.model.connect(u, s, 0)
        b.model.connect(v, s, 1)
        b.model.connect(w, s, 2)
        from repro.model.graph import Signal

        b.outport("y", Signal(s, 0))
        c = b.compile()
        assert single_output(c, {"u": 10.0, "v": 3.0, "w": 1.0}) == 8.0

    def test_product_division(self):
        c = self._model(lambda b, u, v: b.div(u, v))
        assert single_output(c, {"u": 9.0, "v": 3.0}) == 3.0

    def test_abs_min_max(self):
        c = self._model(lambda b, u, v: b.max(b.abs(u), v))
        assert single_output(c, {"u": -7.0, "v": 3.0}) == 7.0
        c2 = self._model(lambda b, u, v: b.min(u, v))
        assert single_output(c2, {"u": -7.0, "v": 3.0}) == -7.0

    def test_saturation(self):
        c = self._model(lambda b, u, v: b.saturate(u, -1.0, 1.0))
        assert single_output(c, {"u": 5.0, "v": 0.0}) == 1.0
        assert single_output(c, {"u": -5.0, "v": 0.0}) == -1.0
        assert single_output(c, {"u": 0.5, "v": 0.0}) == 0.5

    def test_saturation_invalid_bounds(self):
        with pytest.raises(ModelError):
            self._model(lambda b, u, v: b.saturate(u, 1.0, -1.0))

    def test_cast(self):
        c = self._model(lambda b, u, v: b.cast(u, INT))
        assert single_output(c, {"u": 2.9, "v": 0.0}) == 2

    def test_quantizer(self):
        c = self._model(lambda b, u, v: b.quantize(u, 0.5))
        assert single_output(c, {"u": 1.3, "v": 0.0}) == 1.5
        assert single_output(c, {"u": 1.2, "v": 0.0}) == 1.0

    def test_fcn(self):
        c = self._model(
            lambda b, u, v: b.fcn("a * 2 + max(bb, 0)", a=u, bb=v)
        )
        assert single_output(c, {"u": 3.0, "v": -5.0}) == 6.0

    def test_lookup_interpolation(self):
        c = self._model(
            lambda b, u, v: b.lookup(u, [0.0, 10.0], [0.0, 100.0])
        )
        assert single_output(c, {"u": 2.5, "v": 0.0}) == 25.0

    def test_lookup_clipping(self):
        c = self._model(
            lambda b, u, v: b.lookup(u, [0.0, 10.0], [5.0, 100.0])
        )
        assert single_output(c, {"u": -99.0, "v": 0.0}) == 5.0
        assert single_output(c, {"u": 99.0, "v": 0.0}) == 100.0


class TestLogicBlocks:
    def _model(self, op, n=2):
        b = ModelBuilder("L")
        ports = [b.inport(f"u{i}", BOOL) for i in range(n)]
        b.outport("y", b.logic(op, *ports))
        return b.compile()

    @pytest.mark.parametrize(
        "op,inputs,expected",
        [
            ("and", (True, True), True),
            ("and", (True, False), False),
            ("or", (False, False), False),
            ("or", (True, False), True),
            ("xor", (True, True), False),
            ("xor", (True, False), True),
            ("nand", (True, True), False),
            ("nor", (False, False), True),
        ],
    )
    def test_binary_ops(self, op, inputs, expected):
        c = self._model(op)
        out = single_output(c, {"u0": inputs[0], "u1": inputs[1]})
        assert out == expected

    def test_not(self):
        c = self._model("not", n=1)
        assert single_output(c, {"u0": True}) is False

    def test_three_input_and(self):
        c = self._model("and", n=3)
        assert single_output(c, {"u0": True, "u1": True, "u2": False}) is False

    def test_invalid_op(self):
        with pytest.raises(ModelError):
            self._model("implies")

    def test_condition_vectors_recorded(self):
        c = self._model("and")
        collector = CoverageCollector(c.registry)
        sim = Simulator(c, collector)
        sim.step({"u0": True, "u1": False})
        point = c.registry.condition_points[0]
        assert (True, False) in collector.vectors_for(point)

    def test_relational(self):
        b = ModelBuilder("R")
        u = b.inport("u", REAL)
        v = b.inport("v", REAL)
        b.outport("y", b.compare(u, "<=", v))
        c = b.compile()
        assert single_output(c, {"u": 1.0, "v": 2.0}) is True

    def test_compare_to_constant(self):
        b = ModelBuilder("R")
        u = b.inport("u", INT, 0, 10)
        b.outport("y", b.compare(u, "==", 5))
        c = b.compile()
        assert single_output(c, {"u": 5}) is True
        assert single_output(c, {"u": 4}) is False


class TestRoutingBlocks:
    def test_switch_criteria(self):
        for criterion, control, expected in [
            ("bool", True, 1), ("bool", False, 2),
            ("gt", 1.0, 1), ("gt", 0.0, 2),
            ("ge", 0.0, 1), ("ge", -0.5, 2),
            ("ne0", 3.0, 1), ("ne0", 0.0, 2),
        ]:
            b = ModelBuilder("S")
            ctl_ty = BOOL if criterion == "bool" else REAL
            u = b.inport("u", ctl_ty)
            b.outport(
                "y",
                b.switch(u, b.const(1), b.const(2), criterion=criterion),
            )
            c = b.compile()
            assert single_output(c, {"u": control}) == expected, criterion

    def test_multiport_cases_and_default(self):
        b = ModelBuilder("MP")
        u = b.inport("u", INT, 0, 9)
        b.outport(
            "y",
            b.multiport(
                u, cases=[(1, b.const(10)), (2, b.const(20))],
                default=b.const(-1),
            ),
        )
        c = b.compile()
        assert single_output(c, {"u": 1}) == 10
        assert single_output(c, {"u": 2}) == 20
        assert single_output(c, {"u": 7}) == -1

    def test_selector_clamps(self):
        b = ModelBuilder("Sel")
        i = b.inport("i", INT, -5, 10)
        arr = b.const((10, 20, 30))
        b.outport("y", b.select(arr, i, 3))
        c = b.compile()
        assert single_output(c, {"i": 1}) == 20
        assert single_output(c, {"i": 99}) == 30  # clamped high
        assert single_output(c, {"i": -99}) == 10  # clamped low

    def test_array_update(self):
        b = ModelBuilder("AU")
        i = b.inport("i", INT, 0, 2)
        v = b.inport("v", INT, 0, 99)
        b.outport("y", b.array_update(b.const((0, 0, 0)), i, v, 3))
        c = b.compile()
        assert single_output(c, {"i": 1, "v": 42}) == (0, 42, 0)

    def test_mux(self):
        b = ModelBuilder("Mx")
        u = b.inport("u", INT, 0, 9)
        v = b.inport("v", INT, 0, 9)
        b.outport("y", b.mux(u, v))
        c = b.compile()
        assert single_output(c, {"u": 1, "v": 2}) == (1, 2)


class TestDiscreteBlocks:
    def test_unit_delay(self):
        b = ModelBuilder("D")
        u = b.inport("u", INT, 0, 100)
        b.outport("y", b.unit_delay(u, init=7))
        c = b.compile()
        sim = Simulator(c)
        assert sim.step({"u": 1}).outputs["y"] == 7
        assert sim.step({"u": 2}).outputs["y"] == 1
        assert sim.step({"u": 3}).outputs["y"] == 2

    def test_unit_delay_breaks_loops(self):
        b = ModelBuilder("Loop")
        u = b.inport("u", INT, 0, 10)
        delayed = b.unit_delay(u, init=0)  # placeholder wiring
        total = b.add(u, delayed)
        b.outport("y", total)
        c = b.compile()  # compiles without algebraic-loop error
        sim = Simulator(c)
        assert sim.step({"u": 5}).outputs["y"] == 5

    def test_integrator_accumulates_and_saturates(self):
        b = ModelBuilder("I")
        u = b.inport("u", REAL, -10, 10)
        b.outport("y", b.integrator(u, gain=1.0, init=0.0, lo=0.0, hi=5.0))
        c = b.compile()
        sim = Simulator(c)
        assert sim.step({"u": 3.0}).outputs["y"] == 0.0
        assert sim.step({"u": 3.0}).outputs["y"] == 3.0
        assert sim.step({"u": 3.0}).outputs["y"] == 5.0  # saturated

    def test_rate_limiter(self):
        b = ModelBuilder("RL")
        u = b.inport("u", REAL, -100, 100)
        b.outport("y", b.rate_limit(u, up=1.0, down=2.0, init=0.0))
        c = b.compile()
        sim = Simulator(c)
        assert sim.step({"u": 10.0}).outputs["y"] == 1.0
        assert sim.step({"u": 10.0}).outputs["y"] == 2.0
        assert sim.step({"u": -10.0}).outputs["y"] == 0.0  # down rate 2

    def test_counter_wraps(self):
        b = ModelBuilder("C")
        b.inport("u", INT, 0, 1)  # unused input to satisfy the interface
        b.outport("y", b.counter(period=3))
        c = b.compile()
        sim = Simulator(c)
        values = [sim.step({"u": 0}).outputs["y"] for _ in range(5)]
        assert values == [0, 1, 2, 0, 1]


class TestDataStores:
    def test_read_before_write_default(self):
        b = ModelBuilder("DS")
        u = b.inport("u", INT, 0, 100)
        b.data_store("acc", INT, 5)
        old = b.store_read("acc")
        b.store_write("acc", b.add(old, u))
        b.outport("y", old)
        c = b.compile()
        sim = Simulator(c)
        assert sim.step({"u": 3}).outputs["y"] == 5  # reads pre-step value
        assert sim.step({"u": 3}).outputs["y"] == 8

    def test_read_current_sees_write(self):
        b = ModelBuilder("DS2")
        u = b.inport("u", INT, 0, 100)
        b.data_store("acc", INT, 5)
        old = b.store_read("acc")
        b.store_write("acc", b.add(old, u))
        b.outport("y", b.store_read("acc", current=True))
        c = b.compile()
        sim = Simulator(c)
        assert sim.step({"u": 3}).outputs["y"] == 8

    def test_unknown_store_rejected(self):
        b = ModelBuilder("DS3")
        b.inport("u", INT, 0, 1)
        with pytest.raises(ModelError):
            b.store_read("nope")
