"""Tests for model construction, compilation and the builder API."""

import pytest

from repro.errors import CompileError, ModelError
from repro.expr.types import BOOL, INT, REAL
from repro.model import ModelBuilder, Simulator
from repro.model.block import STATE_GLOBAL
from repro.model.blocks import Constant, Gain
from repro.model.graph import InportSpec, Model, Signal


class TestWiringValidation:
    def test_unwired_input_rejected(self):
        model = Model("M")
        gain = Gain("g", 2.0)
        model.add_block(gain)
        with pytest.raises(CompileError, match="unwired"):
            model.compile()

    def test_double_wire_rejected(self):
        model = Model("M")
        const = Constant("c", 1)
        gain = Gain("g", 2.0)
        model.add_block(const)
        model.add_block(gain)
        model.connect(Signal(const, 0), gain, 0)
        with pytest.raises(ModelError, match="wired twice"):
            model.connect(Signal(const, 0), gain, 0)

    def test_bad_port_rejected(self):
        model = Model("M")
        const = Constant("c", 1)
        gain = Gain("g", 2.0)
        model.add_block(const)
        model.add_block(gain)
        with pytest.raises(ModelError):
            model.connect(Signal(const, 0), gain, 5)
        with pytest.raises(ModelError):
            model.connect(Signal(const, 3), gain, 0)

    def test_foreign_block_rejected(self):
        model = Model("M")
        stranger = Constant("s", 1)
        gain = Gain("g", 2.0)
        model.add_block(gain)
        with pytest.raises(ModelError, match="not in model"):
            model.connect(Signal(stranger, 0), gain, 0)

    def test_duplicate_names_rejected(self):
        model = Model("M")
        model.add_block(Constant("c", 1))
        with pytest.raises(ModelError, match="duplicate"):
            model.add_block(Constant("c", 2))

    def test_duplicate_inport_rejected(self):
        model = Model("M")
        model.add_inport(InportSpec("u", INT))
        with pytest.raises(ModelError):
            model.add_inport(InportSpec("u", REAL))

    def test_algebraic_loop_detected(self):
        b = ModelBuilder("Loop")
        u = b.inport("u", REAL)
        from repro.model.blocks import Sum

        s = Sum("s", "++")
        b.model.add_block(s)
        g = Gain("g", 0.5)
        b.model.add_block(g)
        b.model.connect(Signal(s, 0), g, 0)
        b.model.connect(u, s, 0)
        b.model.connect(Signal(g, 0), s, 1)  # feedback without delay
        b.outport("y", Signal(s, 0))
        with pytest.raises(CompileError, match="algebraic loop"):
            b.compile()


class TestStateTable:
    def test_state_categories(self, counter_model):
        elements = counter_model.state_elements
        assert "$store.count" in elements
        assert elements["$store.count"].category == STATE_GLOBAL

    def test_initial_state(self, counter_model):
        state = counter_model.initial_state()
        assert state["$store.count"] == 0

    def test_input_variables(self, counter_model):
        names = [v.name for v in counter_model.input_variables()]
        assert names == ["tick", "amount"]
        suffixed = [v.name for v in counter_model.input_variables("@3")]
        assert suffixed == ["tick@3", "amount@3"]


class TestBuilderConveniences:
    def test_const_caching(self):
        b = ModelBuilder("C")
        b.inport("u", INT, 0, 1)
        s1 = b.const(5)
        s2 = b.const(5)
        assert s1 is s2

    def test_const_distinguishes_types(self):
        b = ModelBuilder("C")
        s_int = b.const(1)
        s_bool = b.const(True)
        assert s_int is not s_bool

    def test_named_const_not_cached(self):
        b = ModelBuilder("C")
        s1 = b.const(5, name="five")
        s2 = b.const(5)
        assert s1 is not s2

    def test_auto_naming_unique(self):
        b = ModelBuilder("N")
        u = b.inport("u", REAL)
        g1 = b.gain(u, 1.0)
        g2 = b.gain(u, 2.0)
        assert g1.block.path != g2.block.path

    def test_scope_prefixes_names(self):
        b = ModelBuilder("S")
        u = b.inport("u", REAL)
        with b.scope("inner"):
            g = b.gain(u, 1.0)
        assert g.block.path.startswith("inner/")

    def test_sub_output_outside_scope_rejected(self):
        b = ModelBuilder("S")
        u = b.inport("u", REAL)
        with pytest.raises(ModelError):
            b.sub_output(u, init=0.0)

    def test_chart_requires_all_inputs(self):
        from repro.stateflow import ChartSpec

        chart = ChartSpec("c")
        chart.input("x", INT, 0, 5)
        chart.output("y", INT, 0)
        s = chart.state("S", entry=["y = x"])
        chart.initial(s)
        b = ModelBuilder("M")
        b.inport("u", INT, 0, 5)
        with pytest.raises(ModelError, match="not wired"):
            b.add_chart(chart, {})


class TestConditionalScopes:
    def test_case_index_validation(self):
        b = ModelBuilder("CS")
        u = b.inport("u", INT, 0, 5)
        sc = b.switch_case(u, cases=[[1]], has_default=True)
        with pytest.raises(ModelError):
            with sc.case(5):
                pass

    def test_default_requires_declaration(self):
        b = ModelBuilder("CS")
        u = b.inport("u", INT, 0, 5)
        sc = b.switch_case(u, cases=[[1]], has_default=False)
        with pytest.raises(ModelError):
            with sc.default():
                pass

    def test_nested_branch_depth(self):
        b = ModelBuilder("Nest")
        u = b.inport("u", INT, 0, 5)
        v = b.inport("v", BOOL)
        sc = b.switch_case(u, cases=[[1]], has_default=True)
        with sc.case(0):
            inner = b.switch(v, b.const(1), b.const(2))
            b.sub_output(inner, init=0)
        c = b.compile()
        depths = {br.label: br.depth for br in c.registry.branches}
        inner_branches = [d for label, d in depths.items() if "Switch1" in label]
        assert all(d == 1 for d in inner_branches)

    def test_activation_gates_state_updates(self):
        """A store write inside an untaken case leaves the store alone."""
        b = ModelBuilder("Gate")
        u = b.inport("u", INT, 0, 5)
        b.data_store("x", INT, 0)
        b.store_read("x")
        sc = b.switch_case(u, cases=[[1]], has_default=True)
        with sc.case(0):
            b.store_write("x", b.const(99))
            marker = b.sub_output(b.const(1), init=0)
        with sc.default():
            nothing = b.sub_output(b.const(0), init=0)
        b.outport("marker", marker)
        b.outport("nothing", nothing)
        c = b.compile()
        sim = Simulator(c)
        sim.step({"u": 3})  # default case: write must not happen
        assert sim.get_state().get("$store.x") == 0
        sim.step({"u": 1})  # case taken: write happens
        assert sim.get_state().get("$store.x") == 99

    def test_sub_output_holds_when_inactive(self):
        b = ModelBuilder("Hold")
        u = b.inport("u", INT, 0, 5)
        v = b.inport("v", INT, 0, 100)
        sc = b.switch_case(u, cases=[[1]], has_default=True)
        with sc.case(0):
            latched = b.sub_output(v, init=-1)
        b.outport("y", latched)
        c = b.compile()
        sim = Simulator(c)
        assert sim.step({"u": 0, "v": 42}).outputs["y"] == -1  # inactive: init
        assert sim.step({"u": 1, "v": 42}).outputs["y"] == 42  # passes through
        assert sim.step({"u": 0, "v": 7}).outputs["y"] == 42  # held

    def test_coverage_not_recorded_in_inactive_region(self):
        from repro.coverage import CoverageCollector

        b = ModelBuilder("Cov")
        u = b.inport("u", INT, 0, 5)
        v = b.inport("v", BOOL)
        sc = b.switch_case(u, cases=[[1]], has_default=True)
        with sc.case(0):
            inner = b.switch(v, b.const(1), b.const(0), name="inner")
            b.sub_output(inner, init=0)
        c = b.compile()
        collector = CoverageCollector(c.registry)
        sim = Simulator(c, collector)
        sim.step({"u": 0, "v": True})  # case not taken
        inner_branches = [
            br for br in c.registry.branches if "inner" in br.label
        ]
        assert all(
            not collector.is_branch_covered(br) for br in inner_branches
        )
        sim.step({"u": 1, "v": True})
        assert any(collector.is_branch_covered(br) for br in inner_branches)


class TestOrdering:
    def test_explicit_ordering_respected(self):
        b = ModelBuilder("Ord")
        u = b.inport("u", INT, 0, 5)
        b.data_store("x", INT, 0)
        # Writer then current-reader: reader sees this step's write.
        b.store_write("x", b.add(b.store_read("x"), u))
        b.outport("y", b.store_read("x", current=True))
        c = b.compile()
        sim = Simulator(c)
        assert sim.step({"u": 2}).outputs["y"] == 2
        assert sim.step({"u": 3}).outputs["y"] == 5
