"""Tests for the step context: state access, gating, event intake."""

import pytest

from repro.errors import SimulationError
from repro.coverage import CoverageCollector, CoverageRegistry, DecisionKind
from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.types import BOOL, INT
from repro.model.context import StepContext, concrete_context, symbolic_context


def make_context(mode="concrete", state=None, collector=None):
    state = state if state is not None else {"blk.x": 0, "$store.s": 1}
    if mode == "concrete":
        return concrete_context({"u": 5}, state, collector, 0)
    return symbolic_context({"u": Var("u", INT)}, state, 0)


class _FakeBlock:
    path = "blk"


class TestInputsAndState:
    def test_input_value(self):
        ctx = make_context()
        assert ctx.input_value("u") == 5

    def test_missing_input(self):
        ctx = make_context()
        with pytest.raises(SimulationError, match="missing input"):
            ctx.input_value("nope")

    def test_read_state_path(self):
        ctx = make_context()
        assert ctx.read_state_path("blk.x") == 0

    def test_read_unknown_state(self):
        ctx = make_context()
        with pytest.raises(SimulationError, match="unknown state"):
            ctx.read_state_path("ghost.y")

    def test_write_unknown_state_rejected(self):
        ctx = make_context()
        with pytest.raises(SimulationError):
            ctx.write_state_path("ghost.y", 1)

    def test_block_scoped_access(self):
        ctx = make_context()
        block = _FakeBlock()
        assert ctx.read_state(block, "x") == 0
        ctx.write_state(block, "x", 9)
        assert ctx.next_state["blk.x"] == 9


class TestActivationGating:
    def test_concrete_inactive_write_dropped(self):
        ctx = make_context()
        ctx.active = False
        ctx.write_state_path("blk.x", 99)
        assert "blk.x" not in ctx.next_state

    def test_concrete_active_write_lands(self):
        ctx = make_context()
        ctx.active = True
        ctx.write_state_path("blk.x", 99)
        assert ctx.next_state["blk.x"] == 99

    def test_symbolic_guarded_write_merges(self):
        ctx = make_context("symbolic")
        guard = Var("g", BOOL)
        ctx.active = guard
        ctx.write_state_path("blk.x", x.lift(7))
        merged = ctx.next_state["blk.x"]
        from repro.expr.evaluator import evaluate

        assert evaluate(merged, {"g": True}) == 7
        assert evaluate(merged, {"g": False}) == 0  # held previous value

    def test_symbolic_double_write_chains(self):
        ctx = make_context("symbolic")
        ctx.active = Var("g1", BOOL)
        ctx.write_state_path("blk.x", x.lift(7))
        ctx.active = Var("g2", BOOL)
        ctx.write_state_path("blk.x", x.lift(8))
        from repro.expr.evaluator import evaluate

        merged = ctx.next_state["blk.x"]
        assert evaluate(merged, {"g1": True, "g2": False}) == 7
        assert evaluate(merged, {"g1": False, "g2": True}) == 8
        assert evaluate(merged, {"g1": False, "g2": False}) == 0


class TestStores:
    def test_store_paths(self):
        assert StepContext.store_path("q") == "$store.q"

    def test_current_store_sees_earlier_write(self):
        ctx = make_context()
        assert ctx.current_store("s") == 1
        ctx.write_store("s", 42)
        assert ctx.current_store("s") == 42
        assert ctx.read_store("s") == 1  # step-start value is stable


class TestEvents:
    def make_registry(self):
        registry = CoverageRegistry()
        decision = registry.register_decision(
            "d", DecisionKind.SWITCH, ("true", "false")
        )
        registry.freeze()
        return registry, decision

    def test_on_decision_records(self):
        registry, decision = self.make_registry()
        collector = CoverageCollector(registry)
        ctx = make_context(collector=collector)
        ctx.on_decision(decision, 0)
        assert ctx.taken_outcomes[decision.decision_id] == 0
        assert collector.is_branch_covered(decision.branches[0])
        assert ctx.new_branches == [0]

    def test_on_decision_gated_by_activation(self):
        registry, decision = self.make_registry()
        collector = CoverageCollector(registry)
        ctx = make_context(collector=collector)
        ctx.active = False
        ctx.on_decision(decision, 0)
        assert decision.decision_id not in ctx.taken_outcomes
        assert not collector.is_branch_covered(decision.branches[0])

    def test_on_decision_rejected_in_symbolic_mode(self):
        registry, decision = self.make_registry()
        ctx = make_context("symbolic")
        with pytest.raises(SimulationError):
            ctx.on_decision(decision, 0)

    def test_record_outcome_conditions_arity_checked(self):
        registry, decision = self.make_registry()
        ctx = make_context("symbolic")
        with pytest.raises(SimulationError, match="outcome conditions"):
            ctx.record_outcome_conditions(decision, [x.TRUE])

    def test_on_decision_without_collector(self):
        registry, decision = self.make_registry()
        ctx = make_context()  # no collector attached
        ctx.on_decision(decision, 1)
        assert ctx.taken_outcomes[decision.decision_id] == 1
        assert ctx.new_branches == []
