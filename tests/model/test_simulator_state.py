"""Tests for the simulator: stepping, snapshot/restore, determinism."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError, StateError
from repro.model import Simulator
from repro.model.inputs import piecewise_constant_sequence, random_input, random_sequence

from tests.conftest import build_queue_model


class TestStepping:
    def test_outputs_produced(self, counter_model):
        sim = Simulator(counter_model)
        result = sim.step({"tick": True, "amount": 5})
        assert result.outputs["count"] == 5
        assert result.outputs["level"] == 1

    def test_missing_input_rejected(self, counter_model):
        sim = Simulator(counter_model)
        with pytest.raises(SimulationError, match="missing input"):
            sim.step({"tick": True})

    def test_inputs_coerced(self, counter_model):
        sim = Simulator(counter_model)
        result = sim.step({"tick": 1, "amount": 5.9})
        assert result.outputs["count"] == 5  # 5.9 coerced to int 5

    def test_time_advances(self, counter_model):
        sim = Simulator(counter_model)
        assert sim.time_index == 0
        sim.step({"tick": False, "amount": 0})
        assert sim.time_index == 1

    def test_run_sequence(self, counter_model):
        sim = Simulator(counter_model)
        results = sim.run([{"tick": True, "amount": 3}] * 4)
        assert [r.outputs["count"] for r in results] == [3, 6, 9, 12]


class TestSnapshotRestore:
    def test_snapshot_is_immutable_copy(self, counter_model):
        sim = Simulator(counter_model)
        before = sim.get_state()
        sim.step({"tick": True, "amount": 9})
        after = sim.get_state()
        assert before.get("$store.count") == 0
        assert after.get("$store.count") == 9

    def test_restore_rewinds(self, counter_model):
        sim = Simulator(counter_model)
        sim.step({"tick": True, "amount": 9})
        snapshot = sim.get_state()
        sim.step({"tick": True, "amount": 9})
        assert sim.get_state().get("$store.count") == 18
        sim.set_state(snapshot)
        assert sim.get_state().get("$store.count") == 9

    def test_restore_then_divergent_futures(self, counter_model):
        """The STCG pattern: branch two different futures from one state."""
        sim = Simulator(counter_model)
        sim.step({"tick": True, "amount": 5})
        fork = sim.get_state()
        a = sim.step({"tick": True, "amount": 1}).outputs["count"]
        sim.set_state(fork)
        b = sim.step({"tick": True, "amount": 2}).outputs["count"]
        assert (a, b) == (6, 7)

    def test_reset(self, counter_model):
        sim = Simulator(counter_model)
        sim.step({"tick": True, "amount": 9})
        sim.reset()
        assert sim.get_state().get("$store.count") == 0
        assert sim.time_index == 0

    def test_mismatched_snapshot_rejected(self, counter_model, queue_model):
        sim = Simulator(counter_model)
        other = Simulator(queue_model).get_state()
        with pytest.raises(StateError):
            sim.set_state(other)


class TestDeterminism:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_same_sequence_same_trajectory(self, seed):
        compiled = build_queue_model()
        rng = random.Random(seed)
        sequence = random_sequence(compiled.inports, rng, 10)
        sim1 = Simulator(compiled)
        sim2 = Simulator(build_queue_model())
        out1 = [s.outputs for s in sim1.run(sequence)]
        out2 = [s.outputs for s in sim2.run(sequence)]
        assert out1 == out2
        assert sim1.get_state().signature() == sim2.get_state().signature()

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_restore_replay_identical(self, seed):
        """set_state + same input => identical successor state."""
        compiled = build_queue_model()
        rng = random.Random(seed)
        sim = Simulator(compiled)
        for _ in range(rng.randint(1, 6)):
            sim.step(random_input(compiled.inports, rng))
        snapshot = sim.get_state()
        probe = random_input(compiled.inports, rng)
        sim.step(probe)
        first = sim.get_state()
        sim.set_state(snapshot)
        sim.step(probe)
        second = sim.get_state()
        assert first == second


class TestModelState:
    def test_signature_stable(self, counter_model):
        sim = Simulator(counter_model)
        a = sim.get_state()
        b = sim.get_state()
        assert a.signature() == b.signature()
        assert a == b
        assert hash(a) == hash(b)

    def test_diff(self, counter_model):
        sim = Simulator(counter_model)
        a = sim.get_state()
        sim.step({"tick": True, "amount": 4})
        b = sim.get_state()
        changed = b.diff(a)
        assert changed == {"$store.count": (4, 0)}

    def test_unknown_element_raises(self, counter_model):
        state = Simulator(counter_model).get_state()
        with pytest.raises(StateError):
            state.get("bogus.path")

    def test_split_by_category(self, counter_model):
        from repro.model.block import STATE_GLOBAL

        state = Simulator(counter_model).get_state()
        parts = state.split(counter_model.state_elements)
        assert "$store.count" in parts[STATE_GLOBAL]


class TestInputGenerators:
    def test_random_input_respects_bounds(self, queue_model):
        rng = random.Random(0)
        for _ in range(50):
            env = random_input(queue_model.inports, rng)
            assert 0 <= env["op"] <= 3
            assert 1 <= env["key"] <= 31

    def test_piecewise_constant_length(self, queue_model):
        rng = random.Random(0)
        seq = piecewise_constant_sequence(queue_model.inports, rng, 20)
        assert len(seq) == 20

    def test_piecewise_constant_has_segments(self, queue_model):
        rng = random.Random(3)
        seq = piecewise_constant_sequence(queue_model.inports, rng, 30)
        # Values are held over segments: consecutive duplicates exist.
        repeats = sum(1 for a, b in zip(seq, seq[1:]) if a == b)
        assert repeats > 5

    def test_piecewise_single_step(self, queue_model):
        rng = random.Random(0)
        seq = piecewise_constant_sequence(queue_model.inports, rng, 1)
        assert len(seq) == 1
