"""Exactness of the compiled distance artifacts against the interpreter.

The solver kernel's contract is bit-exactness: the scalar closures and
the batch tapes must produce, element for element, the same float64 the
:class:`~repro.expr.distance.DistanceEvaluator` produces — including the
failure-distance behaviour on evaluation errors.  Hypothesis drives the
comparison over randomized constraints and randomized candidate boxes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.distance import DistanceEvaluator
from repro.expr.nnf import to_nnf
from repro.expr.types import BOOL, INT, REAL
from repro.solverc.compiler import ConstraintCompiler
from repro.solverc.distc import (
    compile_distance_batch,
    compile_distance_scalar,
    worth_compiling_scalar,
)
from repro.solverc.tape import NotLowerable

I = Var("i", INT, -100, 100)
J = Var("j", INT, -100, 100)
R = Var("r", REAL, -50.0, 50.0)
B = Var("b", BOOL)

VARIABLES = [I, J, R, B]


# -- constraint strategy ---------------------------------------------------

_ATOM_BUILDERS = (x.lt, x.le, x.gt, x.ge, x.eq, x.ne)

_operands = st.sampled_from(
    [I, J, R, x.add(I, J), x.mul(I, 3), x.sub(R, 7.5), x.absolute(I),
     x.minimum(I, J), x.mod(I, 10)]
)


@st.composite
def atoms(draw):
    build = draw(st.sampled_from(_ATOM_BUILDERS))
    left = draw(_operands)
    right = draw(
        st.one_of(
            _operands,
            st.integers(min_value=-120, max_value=120),
        )
    )
    return build(left, right)


@st.composite
def constraints(draw):
    first = draw(atoms())
    rest = draw(st.lists(atoms(), max_size=3))
    expr = first
    for other, combine in zip(
        rest, draw(st.lists(st.sampled_from([x.land, x.lor]),
                            min_size=len(rest), max_size=len(rest)))
    ):
        expr = combine(expr, other)
    if draw(st.booleans()):
        expr = x.land(expr, B)
    return expr


@st.composite
def environments(draw):
    return {
        "i": draw(st.integers(min_value=-100, max_value=100)),
        "j": draw(st.integers(min_value=-100, max_value=100)),
        "r": draw(st.floats(min_value=-50.0, max_value=50.0,
                            allow_nan=False)),
        "b": draw(st.booleans()),
    }


# -- element-wise equivalence ----------------------------------------------


class TestScalarExactness:
    @given(constraint=constraints(), env=environments())
    @settings(max_examples=150, deadline=None)
    def test_scalar_closure_matches_interpreter(self, constraint, env):
        nnf = to_nnf(constraint)
        compiled = compile_distance_scalar(nnf)
        assert compiled(env) == DistanceEvaluator(nnf).distance(env)


class TestBatchExactness:
    @given(
        constraint=constraints(),
        envs=st.lists(environments(), min_size=1, max_size=16),
    )
    @settings(max_examples=150, deadline=None)
    def test_batch_tape_matches_scalar_elementwise(self, constraint, envs):
        """Batched distances over a randomized box of candidates equal the
        per-candidate interpreter distances bit for bit."""
        nnf = to_nnf(constraint)
        batch = compile_distance_batch(nnf, VARIABLES)
        expected = [DistanceEvaluator(nnf).distance(env) for env in envs]
        got = batch.evaluate(envs)
        assert got.shape == (len(envs),)
        assert list(got) == expected


class TestFallbacks:
    def test_unbounded_int_is_not_lowerable(self):
        unbounded = Var("n", INT)  # no domain: exact-float gate must refuse
        constraint = x.gt(x.mul(unbounded, unbounded), 10)
        with pytest.raises(NotLowerable):
            compile_distance_batch(to_nnf(constraint), [unbounded])

    def test_compiled_constraint_falls_back_to_scalar(self):
        """A non-lowerable constraint leaves batch() None (the engine then
        scores candidates through the scalar path) and counts the fallback."""
        unbounded = Var("n", INT)
        constraint = x.gt(x.mul(unbounded, unbounded), 10)
        compiler = ConstraintCompiler()
        bundle = compiler.compile(constraint, [unbounded])
        assert bundle.batch() is None
        assert bundle.batch() is None  # memoized, counted once
        assert compiler.stats.counts["batch_fallbacks"] == 1
        # The scalar objective still works and matches the interpreter.
        objective = bundle.objective()
        assert objective is not None
        env = {"n": 2}
        assert objective(env) == DistanceEvaluator(
            to_nnf(constraint)
        ).distance(env)

    def test_shared_dag_refuses_scalar_compilation(self):
        """A heavily shared DAG re-expands in closures; the gate must keep
        the memoizing interpreter instead."""
        expr = x.add(I, J)
        for _ in range(12):
            expr = x.add(expr, expr)  # 2^12 occurrences, 14 unique nodes
        constraint = x.gt(expr, 0)
        assert not worth_compiling_scalar(to_nnf(constraint))
        compiler = ConstraintCompiler()
        bundle = compiler.compile(constraint, [I, J])
        assert bundle.objective() is None
        assert compiler.stats.counts["scalar_fallbacks"] == 1

    def test_small_constraint_is_worth_compiling(self):
        assert worth_compiling_scalar(to_nnf(x.land(x.gt(I, 0), x.lt(J, 5))))
