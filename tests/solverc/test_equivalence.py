"""Observational transparency of the solver kernel (repro.solverc).

Two levels, mirroring the sim-kernel suite:

* **per solve** — on constraints harvested from real model encodings,
  a kernel-assisted engine must return the same status, model, terminal
  stage and RNG-consumption counters as the plain interpreter, cold and
  warm (the warm pass replays the cached contraction snapshots);
* **per generation run** — fixed-seed STCG runs must produce
  bit-identical suites with the kernel on or off, across every registry
  benchmark.

The generation-level runs pin wall-clock out of the picture: a fake
deterministic clock drives the generator loop, the per-call solver
budgets are effectively unbounded, and failure backoff is disabled (the
lite engine's real-time budget is the one remaining nondeterminism
source, for kernel and interpreter runs alike).
"""

import random

import pytest

from repro.cache import SolveCache
from repro.core import StcgConfig, StcgGenerator
from repro.core.config import KernelConfig
from repro.coverage.collector import CoverageCollector
from repro.model.inputs import random_input
from repro.model.simulator import Simulator
from repro.models.registry import BENCHMARKS
from repro.solver.encoder import OneStepEncoding
from repro.solver.engine import SolverConfig, SolverEngine
from repro.solverc import ConstraintCompiler

from tests.conftest import build_counter_model, build_queue_model

MODEL_NAMES = [model.name for model in BENCHMARKS]


class FakeClock:
    """A deterministic monotonic clock: every read advances one tick."""

    def __init__(self, tick=0.001):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t


def harvest_problems(bench, steps=12, states=5, seed=11):
    """(constraint, variables) pairs from real one-step encodings."""
    compiled = bench.build()
    collector = CoverageCollector(compiled.registry)
    sim = Simulator(compiled, collector)
    rng = random.Random(seed)
    visited = [sim.get_state()]
    for _ in range(steps):
        sim.step(random_input(compiled.inports, rng))
        visited.append(sim.get_state())
    problems = []
    branches = list(compiled.registry.branches)
    for state in visited[:: max(1, len(visited) // states)]:
        encoding = OneStepEncoding(compiled, state)
        for branch in branches:
            problems.append(
                (encoding.path_constraint(branch), encoding.variables)
            )
    return problems


def result_key(result):
    """Everything a solve exposes that determinism must preserve —
    including the RNG-consumption counters, so downstream draws agree."""
    return (
        result.status,
        result.model,
        result.stats.stage,
        result.stats.samples,
        result.stats.avm_evaluations,
    )


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_solves_bit_identical_per_constraint(name):
    bench = next(m for m in BENCHMARKS if m.name == name)
    problems = harvest_problems(bench)
    config = SolverConfig(
        max_samples=32, avm_evaluations=300, time_budget_s=60.0
    )
    compiler = ConstraintCompiler()

    interp = SolverEngine(config)
    rng = random.Random(99)
    base = [result_key(interp.solve(c, v, rng)) for c, v in problems]

    compiled_list = [compiler.compile(c, v) for c, v in problems]
    kern = SolverEngine(config)
    rng = random.Random(99)
    cold = [
        result_key(kern.solve(c, v, rng, compiled=comp))
        for (c, v), comp in zip(problems, compiled_list)
    ]
    assert cold == base

    # Warm pass: contraction snapshots and memoized artifacts replay.
    warm_engine = SolverEngine(config)
    rng = random.Random(99)
    warm = [
        result_key(warm_engine.solve(c, v, rng, compiled=comp))
        for (c, v), comp in zip(problems, compiled_list)
    ]
    assert warm == base


def _generation(build, solver_kernel, cache=None):
    config = StcgConfig(
        budget_s=0.6,
        seed=7,
        failure_backoff_after=10**9,
        solver=SolverConfig(
            max_samples=32, avm_evaluations=300, time_budget_s=600.0
        ),
        kernels=KernelConfig(solver=solver_kernel),
    )
    generator = StcgGenerator(
        build(), config, cache=cache, clock=FakeClock()
    )
    return generator, generator.run()


def _suite_key(result):
    return (
        [case.inputs for case in result.suite],
        [case.origin for case in result.suite],
        result.decision,
        result.condition,
        result.mcdc,
        dict(result.stats),
    )


@pytest.mark.parametrize("name", MODEL_NAMES)
def test_generation_bit_identical_kernel_on_vs_off(name):
    bench = next(m for m in BENCHMARKS if m.name == name)
    _, on = _generation(bench.build, True)
    _, off = _generation(bench.build, False)
    assert _suite_key(on) == _suite_key(off)


@pytest.mark.parametrize("build", [build_counter_model, build_queue_model])
def test_warm_cache_compiles_on_revisit_without_changing_results(build):
    """The first visit of a (state, target) pair never compiles; a warm
    rerun over a shared cache revisits pairs, builds the bundles, and
    must still reproduce the cold run bit for bit."""
    compiled = build()
    shared = SolveCache(compiled.name)
    cold_gen, cold = _generation(lambda: compiled, True, cache=shared)
    assert cold_gen._compiler.stats.counts["constraints_compiled"] == 0
    assert shared.stats()["compiled_hits"] == 0

    warm_gen, warm = _generation(lambda: compiled, True, cache=shared)
    kernel_off_gen, reference = _generation(lambda: compiled, False)

    assert _suite_key(warm)[:5] == _suite_key(reference)[:5]
    # The rerun revisited pairs, so the kernel finally engaged.
    assert shared.stats()["compiled_hits"] > 0
    assert warm_gen._compiler.stats.counts["constraints_compiled"] > 0
    assert kernel_off_gen._compiler is None
