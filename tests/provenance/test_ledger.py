"""Unit tests for the provenance ledger (``repro.provenance/1``)."""

import pytest

from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.types import BOOL
from repro.coverage.collector import ConditionObligation
from repro.coverage.registry import CoverageRegistry, DecisionKind
from repro.provenance import (
    NULL_LEDGER,
    PROVENANCE_SCHEMA,
    ProvenanceLedger,
    all_objective_ids,
    branch_objective_id,
    merge_provenance,
    obligation_objective_id,
    uncovered_objectives,
)


def tiny_registry():
    registry = CoverageRegistry()
    registry.register_decision("Sw", DecisionKind.SWITCH, ("hi", "lo"))
    a, b = Var("a", BOOL), Var("b", BOOL)
    registry.register_condition_point("Logic1", ("a", "b"), x.land(a, b))
    registry.freeze()
    return registry


class TestObjectiveIds:
    def test_branch_id_format(self):
        registry = tiny_registry()
        assert branch_objective_id(registry.branches[0]) == "D:Sw:hi"
        assert branch_objective_id(registry.branches[1]) == "D:Sw:lo"

    def test_obligation_id_format(self):
        registry = tiny_registry()
        value = ConditionObligation(0, 1, True, False)
        mcdc = ConditionObligation(0, 0, False, True)
        assert obligation_objective_id(registry, value) == "C:Logic1:c1=T"
        assert obligation_objective_id(registry, mcdc) == "M:Logic1:c0=F"

    def test_enumeration_order_is_d_then_c_then_m(self):
        ids = all_objective_ids(tiny_registry())
        assert ids == [
            "D:Sw:hi", "D:Sw:lo",
            "C:Logic1:c0=T", "C:Logic1:c0=F",
            "C:Logic1:c1=T", "C:Logic1:c1=F",
            "M:Logic1:c0=T", "M:Logic1:c0=F",
            "M:Logic1:c1=T", "M:Logic1:c1=F",
        ]


class TestLedgerAttribution:
    def test_cover_commits_with_end_case_index(self):
        ledger = ProvenanceLedger(tiny_registry(), "STCG")
        ledger.begin_case("solver")
        ledger.cover_branch(0, step=3)
        ledger.end_case(0)
        entry = ledger.snapshot()["objectives"]["D:Sw:hi"]
        assert entry == {"status": "covered", "case": 0, "step": 3,
                         "origin": "solver", "failed_attempts": 0}

    def test_discarded_candidate_keeps_coverage_with_null_case(self):
        ledger = ProvenanceLedger(tiny_registry(), "SimCoTest")
        ledger.begin_case("random")
        ledger.cover_obligation(ConditionObligation(0, 0, True, False), 1)
        ledger.end_case(None)
        entry = ledger.snapshot()["objectives"]["C:Logic1:c0=T"]
        assert entry["status"] == "covered"
        assert entry["case"] is None
        assert entry["origin"] == "random"

    def test_first_cover_wins_across_cases(self):
        # The same objective re-covered by a later case must not steal
        # attribution from the first covering case.
        ledger = ProvenanceLedger(tiny_registry(), "STCG")
        ledger.begin_case("solver")
        ledger.cover_branch(1, step=2)
        ledger.end_case(0)
        ledger.begin_case("random")
        ledger.cover_branch(1, step=9)
        ledger.end_case(4)
        entry = ledger.snapshot()["objectives"]["D:Sw:lo"]
        assert (entry["case"], entry["step"], entry["origin"]) == \
            (0, 2, "solver")

    def test_begin_case_drops_stale_buffer(self):
        ledger = ProvenanceLedger(tiny_registry(), "STCG")
        ledger.begin_case("solver")
        ledger.cover_branch(0, step=1)
        # No end_case: a crashed/abandoned candidate leaves nothing.
        ledger.begin_case("random")
        ledger.end_case(0)
        assert ledger.snapshot()["objectives"]["D:Sw:hi"]["status"] == \
            "uncovered"


class TestLedgerAudit:
    def test_attempt_counters_and_trail(self):
        ledger = ProvenanceLedger(tiny_registry(), "STCG")
        ledger.attempt("D:Sw:hi", 7, "unsat", "contract", "full", True)
        ledger.attempt("D:Sw:hi", 9, "unsat", "contract", "full", True)
        ledger.attempt("D:Sw:hi", 9, "unknown", None, "lite", False)
        entry = ledger.snapshot()["objectives"]["D:Sw:hi"]
        assert entry["attempts"] == {"unknown:none": 1, "unsat:contract": 2}
        assert entry["trail"][0] == {
            "node": 7, "verdict": "unsat", "stage": "contract",
            "engine": "full", "compiled": True,
        }
        assert entry["trail"][2]["stage"] == "none"

    def test_trail_is_bounded_but_counters_are_not(self):
        ledger = ProvenanceLedger(tiny_registry(), "STCG")
        for node in range(20):
            ledger.attempt("D:Sw:hi", node, "unsat", "avm", "full", False)
        entry = ledger.snapshot()["objectives"]["D:Sw:hi"]
        assert entry["attempts"] == {"unsat:avm": 20}
        assert len(entry["trail"]) == 8

    def test_failed_attempts_exclude_sat(self):
        ledger = ProvenanceLedger(tiny_registry(), "STCG")
        ledger.attempt("D:Sw:hi", 1, "unsat", "avm", "full", False)
        ledger.attempt("D:Sw:hi", 2, "sat", "solver", "full", False)
        ledger.begin_case("solver")
        ledger.cover_branch(0, step=1)
        ledger.end_case(0)
        entry = ledger.snapshot()["objectives"]["D:Sw:hi"]
        assert entry["status"] == "covered"
        assert entry["failed_attempts"] == 1

    def test_skip_counters(self):
        ledger = ProvenanceLedger(tiny_registry(), "SLDV")
        ledger.skip("D:Sw:lo", "verdict")
        ledger.skip("D:Sw:lo", "verdict")
        ledger.skip("D:Sw:lo", "const_false")
        entry = ledger.snapshot()["objectives"]["D:Sw:lo"]
        assert entry["skips"] == {"const_false": 1, "verdict": 2}


class TestSnapshot:
    def test_shape_and_totals(self):
        ledger = ProvenanceLedger(tiny_registry(), "STCG")
        ledger.begin_case("solver")
        ledger.cover_branch(0, step=1)
        ledger.end_case(0)
        snapshot = ledger.snapshot()
        assert snapshot["schema"] == PROVENANCE_SCHEMA
        assert snapshot["tool"] == "STCG"
        assert list(snapshot["objectives"]) == \
            all_objective_ids(tiny_registry())
        assert snapshot["totals"] == {
            "objectives": 10, "covered": 1, "uncovered": 9,
        }

    def test_uncovered_objectives_helper(self):
        ledger = ProvenanceLedger(tiny_registry(), "STCG")
        ledger.begin_case("solver")
        ledger.cover_branch(0, step=1)
        ledger.end_case(0)
        pairs = uncovered_objectives(ledger.snapshot())
        assert len(pairs) == 9
        assert all(entry["status"] == "uncovered" for _, entry in pairs)
        assert "D:Sw:hi" not in dict(pairs)

    def test_snapshot_is_json_stable(self):
        import json

        ledger = ProvenanceLedger(tiny_registry(), "STCG")
        ledger.attempt("D:Sw:hi", 1, "unsat", "avm", "full", False)
        once = json.dumps(ledger.snapshot(), sort_keys=True)
        again = json.dumps(ledger.snapshot(), sort_keys=True)
        assert once == again


class TestNullLedger:
    def test_null_ledger_is_inert(self):
        assert NULL_LEDGER.enabled is False
        NULL_LEDGER.begin_case("solver")
        NULL_LEDGER.cover_branch(0, 1)
        NULL_LEDGER.cover_obligation(ConditionObligation(0, 0, True, False), 1)
        NULL_LEDGER.end_case(0)
        NULL_LEDGER.attempt("D:x", 0, "unsat", None, "full", False)
        NULL_LEDGER.skip("D:x", "verdict")
        assert NULL_LEDGER.snapshot() == {}


class TestMerge:
    def snap(self, tool="STCG", **entries):
        objectives = {}
        for objective_id, entry in entries.items():
            objectives[objective_id.replace("_", ":")] = entry
        covered = sum(
            1 for e in objectives.values() if e["status"] == "covered"
        )
        return {
            "schema": PROVENANCE_SCHEMA, "tool": tool,
            "objectives": objectives,
            "totals": {"objectives": len(objectives), "covered": covered,
                       "uncovered": len(objectives) - covered},
        }

    def test_first_covering_repetition_wins(self):
        rep0 = self.snap(D_a={"status": "uncovered", "attempts": {},
                              "skips": {}, "trail": []})
        rep1 = self.snap(D_a={"status": "covered", "case": 2, "step": 1,
                              "origin": "solver", "failed_attempts": 3})
        rep2 = self.snap(D_a={"status": "covered", "case": 0, "step": 1,
                              "origin": "random", "failed_attempts": 0})
        merged = merge_provenance([(0, rep0), (1, rep1), (2, rep2)])
        entry = merged["objectives"]["D:a"]
        assert entry["status"] == "covered"
        assert entry["repetition"] == 1
        assert entry["origin"] == "solver"
        assert merged["runs"] == 3
        assert merged["totals"]["covered"] == 1

    def test_uncovered_everywhere_sums_counters(self):
        rep0 = self.snap(D_a={
            "status": "uncovered", "attempts": {"unsat:avm": 2},
            "skips": {"verdict": 1},
            "trail": [{"node": 1, "verdict": "unsat", "stage": "avm",
                       "engine": "full", "compiled": False}],
        })
        rep1 = self.snap(D_a={
            "status": "uncovered",
            "attempts": {"unsat:avm": 3, "unknown:none": 1},
            "skips": {}, "trail": [],
        })
        merged = merge_provenance([(0, rep0), (1, rep1)])
        entry = merged["objectives"]["D:a"]
        assert entry["attempts"] == {"unknown:none": 1, "unsat:avm": 5}
        assert entry["skips"] == {"verdict": 1}
        assert len(entry["trail"]) == 1  # first non-empty trail is kept

    def test_merge_of_identical_reps_matches_single(self):
        snapshot = self.snap(D_a={"status": "covered", "case": 0, "step": 1,
                                  "origin": "solver", "failed_attempts": 0})
        one = merge_provenance([(0, snapshot)])
        three = merge_provenance([(0, snapshot)] * 3)
        assert one["objectives"].keys() == three["objectives"].keys()
        assert one["totals"]["covered"] == three["totals"]["covered"] == 1
        assert three["runs"] == 3

    def test_merge_empty(self):
        merged = merge_provenance([])
        assert merged["objectives"] == {}
        assert merged["runs"] == 0


class TestAllObjectiveIdsMatchCollector:
    def test_registry_order_matches_collector_enumeration(self):
        from repro.coverage.collector import CoverageCollector

        registry = tiny_registry()
        collector = CoverageCollector(registry)
        obligation_ids = [
            obligation_objective_id(registry, o)
            for o in collector.all_condition_obligations()
        ]
        branch_ids = [branch_objective_id(b) for b in registry.branches]
        assert branch_ids + obligation_ids == all_objective_ids(registry)


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
