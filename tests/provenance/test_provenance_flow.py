"""End-to-end provenance: generation, manifest fold, explain, dashboard.

The ledger's contract is observational: turning it on must not change a
fixed-seed suite, and the manifest fold must be worker-count invariant.
Both are asserted here over the tiny counter model (full STCG coverage in
well under the budget, so runs terminate deterministically).
"""

import json

import pytest

from repro import api
from repro.errors import ReproError
from repro.models.registry import BenchmarkModel
from repro.telemetry.diff import diff_runs, find_regressions, render_diff
from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.explain import load_provenance, render_explain

from tests.conftest import build_counter_model

TINY = BenchmarkModel("Tiny", "counter fixture", build_counter_model, 0, 0)


def suite_signature(result):
    return [
        (case.origin, tuple(map(tuple, (sorted(s.items()) for s in
                                        case.inputs))),
         tuple(case.new_branch_ids))
        for case in result.suite
    ]


class TestGenerateProvenance:
    @pytest.mark.parametrize("tool", api.TOOLS)
    def test_snapshot_lands_in_result(self, tool):
        result = api.generate(TINY, tool=tool, budget_s=2.0, seed=3)
        snapshot = result.provenance
        assert snapshot["schema"] == api.PROVENANCE_SCHEMA
        assert snapshot["tool"] == tool
        totals = snapshot["totals"]
        assert totals["covered"] + totals["uncovered"] == \
            totals["objectives"] > 0
        covered = sum(
            1 for entry in snapshot["objectives"].values()
            if entry["status"] == "covered"
        )
        assert covered == totals["covered"]

    def test_off_yields_empty_snapshot(self):
        result = api.generate(TINY, budget_s=2.0, seed=3, provenance=False)
        assert result.provenance == {}

    @pytest.mark.parametrize("tool", api.TOOLS)
    def test_observation_does_not_perturb_the_suite(self, tool):
        on = api.generate(TINY, tool=tool, budget_s=3.0, seed=7)
        off = api.generate(TINY, tool=tool, budget_s=3.0, seed=7,
                           provenance=False)
        assert suite_signature(on) == suite_signature(off)
        assert (on.decision, on.condition, on.mcdc) == \
            (off.decision, off.condition, off.mcdc)


class TestManifestFold:
    def run(self, tmp_path, workers, name):
        path = tmp_path / f"{name}.jsonl"
        api.run_experiment(
            models=[TINY], budget_s=2.0, repetitions=2, seed=1,
            workers=workers, events_out=str(path),
        )
        return json.loads(
            (tmp_path / f"{name}.manifest.json").read_text()
        )

    def test_workers_1_and_2_fold_bit_identically(self, tmp_path):
        serial = self.run(tmp_path, 1, "serial")
        parallel = self.run(tmp_path, 2, "parallel")
        assert json.dumps(serial["provenance"], sort_keys=True) == \
            json.dumps(parallel["provenance"], sort_keys=True)

    def test_merged_cell_shape(self, tmp_path):
        manifest = self.run(tmp_path, 1, "shape")
        cell = manifest["provenance"]["Tiny"]["STCG"]
        assert cell["schema"] == api.PROVENANCE_SCHEMA
        assert cell["runs"] == 2
        covered = [e for e in cell["objectives"].values()
                   if e["status"] == "covered"]
        assert covered, "STCG covered nothing on the counter model"
        assert all("repetition" in entry for entry in covered)

    def test_provenance_off_leaves_empty_section(self, tmp_path):
        path = tmp_path / "off.jsonl"
        api.run_experiment(
            models=[TINY], tools=("STCG",), budget_s=2.0, repetitions=1,
            seed=1, events_out=str(path), provenance=False,
        )
        manifest = json.loads((tmp_path / "off.manifest.json").read_text())
        assert manifest["provenance"] == {}
        with pytest.raises(ReproError, match="no provenance"):
            load_provenance(str(path))


@pytest.fixture(scope="module")
def run_manifest(tmp_path_factory):
    """One shared SLDV+STCG run with uncovered objectives to explain."""
    tmp_path = tmp_path_factory.mktemp("prov")
    path = tmp_path / "run.jsonl"
    api.run_experiment(
        models=[TINY], tools=("STCG", "SLDV"), budget_s=2.0,
        repetitions=1, seed=1, events_out=str(path),
    )
    return str(tmp_path / "run.manifest.json")


class TestExplain:
    def test_full_report_headers(self, run_manifest):
        text = render_explain(load_provenance(run_manifest))
        assert "== Tiny / STCG (" in text
        assert "covered, 1 run(s)" in text
        assert "[covered]" in text

    def test_objective_filter(self, run_manifest):
        provenance = load_provenance(run_manifest)
        snapshot = provenance["Tiny"]["STCG"]
        objective_id = next(iter(snapshot["objectives"]))
        text = render_explain(provenance, objective=objective_id)
        assert objective_id in text
        assert text.count("[") == text.count(f"] {objective_id}")

    def test_unknown_objective_raises(self, run_manifest):
        with pytest.raises(ReproError, match="matched nothing"):
            render_explain(load_provenance(run_manifest), objective="D:nope")

    def test_uncovered_filter_shows_audit_chain(self, run_manifest):
        provenance = load_provenance(run_manifest)
        any_uncovered = any(
            entry["status"] == "uncovered"
            for per_tool in provenance.values()
            for snapshot in per_tool.values()
            for entry in snapshot["objectives"].values()
        )
        text = render_explain(provenance, uncovered=True)
        if any_uncovered:
            assert "[uncovered]" in text
            assert "[covered]" not in text
        else:
            assert text == "every objective of every cell is covered"


class TestDashboard:
    def test_self_contained_html(self, run_manifest):
        manifest = json.loads(open(run_manifest).read())
        page = render_dashboard(manifest)
        assert page.lstrip().startswith("<!DOCTYPE html>")
        assert "Objective provenance" in page
        assert "https://" not in page  # no CDN, no external assets
        assert "prefers-color-scheme: dark" in page

    def test_degrades_without_provenance(self, run_manifest):
        manifest = json.loads(open(run_manifest).read())
        manifest["provenance"] = {}
        page = render_dashboard(manifest)
        assert "<!DOCTYPE html>" in page
        assert "the ledger was off" in page


class TestDiffNamesObjectives:
    def doctor(self, manifest):
        doctored = json.loads(json.dumps(manifest))
        for per_tool in doctored["provenance"].values():
            for snapshot in per_tool.values():
                for entry in snapshot["objectives"].values():
                    if entry["status"] == "covered":
                        entry.clear()
                        entry.update(status="uncovered", attempts={},
                                     skips={}, trail=[])
                        snapshot["totals"]["covered"] -= 1
                        snapshot["totals"]["uncovered"] += 1
                        return doctored
        raise AssertionError("no covered objective to doctor")

    def test_lost_objective_is_named(self, run_manifest):
        manifest = json.loads(open(run_manifest).read())
        doctored = self.doctor(manifest)
        diff = diff_runs(manifest, doctored)
        lost = [ids for ids in diff.objectives.values() if ids]
        assert len(lost) == 1 and len(lost[0]) == 1
        problems = find_regressions(diff)
        assert any("lost 1 objective" in p for p in problems)
        rendered = render_diff(diff)
        assert "regressed objectives" in rendered
        assert lost[0][0] in rendered

    def test_self_diff_is_clean(self, run_manifest):
        manifest = json.loads(open(run_manifest).read())
        diff = diff_runs(manifest, manifest)
        assert not any(ids for ids in diff.objectives.values())
        assert find_regressions(diff) == []

    def test_absent_section_is_not_a_regression(self, run_manifest):
        # A pre-provenance or ledger-off candidate must not read as
        # "lost every objective".
        manifest = json.loads(open(run_manifest).read())
        bare = json.loads(json.dumps(manifest))
        bare["provenance"] = {}
        diff = diff_runs(manifest, bare)
        assert not any(ids for ids in diff.objectives.values())
