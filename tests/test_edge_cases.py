"""Edge-case tests across subsystem seams."""

import math

import pytest

from repro.errors import ChartError, ModelError
from repro.expr.types import BOOL, INT, REAL
from repro.model import ModelBuilder, Simulator
from repro.model.graph import InportSpec
from repro.stateflow import ChartSpec


class TestInportSpec:
    def test_as_var_carries_bounds(self):
        spec = InportSpec("u", INT, -5, 5)
        var = spec.as_var()
        assert var.name == "u"
        assert var.lo == -5 and var.hi == 5

    def test_as_var_suffix(self):
        spec = InportSpec("u", REAL)
        assert spec.as_var("@3").name == "u@3"


class TestChartEdgeCases:
    def test_update_without_compute_rejected(self):
        chart = ChartSpec("c")
        chart.output("o", INT, 0)
        s = chart.state("S", entry=["o = 1"])
        chart.initial(s)
        from repro.stateflow.chart import ChartBlock

        block = ChartBlock("c", chart)
        with pytest.raises(ChartError, match="update without compute"):
            block.update(object(), [], [])

    def test_self_loop_transition(self):
        chart = ChartSpec("loop")
        chart.input("go", BOOL)
        chart.output("n", INT, 0)
        s = chart.state("S")
        chart.initial(s)
        chart.transition(s, s, guard="go", actions=["n = n + 1"])
        b = ModelBuilder("M")
        go = b.inport("go", BOOL)
        cs = b.add_chart(chart, {"go": go}, name="loop")
        b.outport("n", cs["n"])
        sim = Simulator(b.compile())
        assert sim.step({"go": True}).outputs["n"] == 1
        assert sim.step({"go": True}).outputs["n"] == 2
        assert sim.step({"go": False}).outputs["n"] == 2

    def test_chart_with_no_transitions(self):
        chart = ChartSpec("static")
        chart.input("u", INT, 0, 5)
        chart.output("o", INT, 7)
        s = chart.state("Only", during=["o = u"])
        chart.initial(s)
        b = ModelBuilder("M")
        u = b.inport("u", INT, 0, 5)
        cs = b.add_chart(chart, {"u": u}, name="static")
        b.outport("o", cs["o"])
        sim = Simulator(b.compile())
        assert sim.step({"u": 3}).outputs["o"] == 3

    def test_entry_actions_see_transition_actions(self):
        chart = ChartSpec("seq")
        chart.input("go", BOOL)
        chart.local("v", INT, 0)
        chart.output("o", INT, 0)
        a = chart.state("A")
        b_state = chart.state("B", entry=["o = v * 10"])
        chart.initial(a)
        chart.transition(a, b_state, guard="go", actions=["v = 4"])
        b = ModelBuilder("M")
        go = b.inport("go", BOOL)
        cs = b.add_chart(chart, {"go": go}, name="seq")
        b.outport("o", cs["o"])
        sim = Simulator(b.compile())
        assert sim.step({"go": True}).outputs["o"] == 40


class TestBuilderEdgeCases:
    def test_empty_model_compiles(self):
        b = ModelBuilder("Empty")
        b.inport("u", INT, 0, 1)
        compiled = b.compile()
        assert compiled.registry.n_branches == 0
        sim = Simulator(compiled)
        result = sim.step({"u": 0})
        assert result.outputs == {}

    def test_outport_of_constant(self):
        b = ModelBuilder("K")
        b.inport("u", INT, 0, 1)
        b.outport("k", b.const(42))
        sim = Simulator(b.compile())
        assert sim.step({"u": 0}).outputs["k"] == 42

    def test_deeply_nested_conditionals(self):
        b = ModelBuilder("Deep")
        u = b.inport("u", INT, 0, 9)
        v = b.inport("v", INT, 0, 9)
        sc = b.switch_case(u, cases=[[1]], has_default=True)
        with sc.case(0):
            inner = b.switch_case(v, cases=[[2]], has_default=True)
            with inner.case(0):
                # A decision nested two conditional contexts deep.
                sel = b.switch(
                    b.compare(v, "==", 2), b.const(99), b.const(-9),
                    name="deep_sw",
                )
                deep = b.sub_output(sel, init=0)
            mid = b.sub_output(deep, init=-1)
        b.outport("y", mid)
        compiled = b.compile()
        deep_branches = [
            br for br in compiled.registry.branches if "deep_sw" in br.label
        ]
        assert all(br.depth == 2 for br in deep_branches)
        sim = Simulator(compiled)
        assert sim.step({"u": 1, "v": 2}).outputs["y"] == 99
        assert sim.step({"u": 0, "v": 0}).outputs["y"] == 99  # held

    def test_signal_from_other_builder_rejected(self):
        b1 = ModelBuilder("A")
        foreign = b1.inport("u", INT, 0, 1)
        b2 = ModelBuilder("B")
        b2.inport("w", INT, 0, 1)
        with pytest.raises(ModelError):
            b2.outport("y", foreign)


class TestSimulatorEdgeCases:
    def test_bool_input_accepts_ints(self):
        b = ModelBuilder("B")
        u = b.inport("u", BOOL)
        b.outport("y", b.switch(u, b.const(1), b.const(0)))
        sim = Simulator(b.compile())
        assert sim.step({"u": 1}).outputs["y"] == 1
        assert sim.step({"u": 0}).outputs["y"] == 0

    def test_division_block_by_zero(self):
        b = ModelBuilder("Div")
        u = b.inport("u", REAL, -1.0, 1.0)
        b.outport("y", b.div(b.const(1.0), u))
        sim = Simulator(b.compile())
        assert sim.step({"u": 0.0}).outputs["y"] == math.inf

    def test_float_state_roundtrip_precision(self):
        b = ModelBuilder("F")
        u = b.inport("u", REAL, 0.0, 1.0)
        b.outport("y", b.integrator(u, gain=0.1))
        compiled = b.compile()
        sim = Simulator(compiled)
        for _ in range(5):
            sim.step({"u": 1.0 / 3.0})
        snapshot = sim.get_state()
        sim.set_state(snapshot)
        assert sim.get_state() == snapshot


class TestTimelinePlotEdgeCases:
    def test_figure4_with_empty_results(self):
        from repro.core.result import GenerationResult
        from repro.core.testcase import TestSuite
        from repro.coverage.collector import CoverageSummary
        from repro.harness import figure4_model

        empty = GenerationResult(
            "STCG", "M", CoverageSummary(0, 0, 0, 0, 1), TestSuite("M", [])
        )
        text = figure4_model({"STCG": empty}, budget_s=10.0)
        assert "legend" in text  # renders without crashing
