"""Tests for the error hierarchy and top-level package surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    def test_specific_parents(self):
        assert issubclass(errors.ExprTypeError, errors.ExprError)
        assert issubclass(errors.ExprParseError, errors.ExprError)
        assert issubclass(errors.EvalError, errors.ExprError)
        assert issubclass(errors.CompileError, errors.ModelError)
        assert issubclass(errors.StateError, errors.SimulationError)
        assert issubclass(errors.ChartError, errors.ModelError)

    def test_catchable_at_boundary(self):
        from repro.models import get_benchmark

        with pytest.raises(errors.ReproError):
            get_benchmark("no-such-model")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_main_exports(self):
        assert callable(repro.StcgGenerator)
        assert callable(repro.ModelBuilder)
        assert callable(repro.Simulator)
        assert callable(repro.generate)

    def test_generate_convenience(self):
        from tests.conftest import build_counter_model

        result = repro.generate(
            build_counter_model(), repro.StcgConfig(budget_s=3, seed=0)
        )
        assert result.tool == "STCG"
        assert result.decision > 0.0

    def test_all_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.cli
        import repro.core
        import repro.coverage
        import repro.expr
        import repro.harness
        import repro.model
        import repro.models
        import repro.solver
        import repro.stateflow

    def test_dunder_all_resolves(self):
        import repro.expr as expr_pkg

        for name in expr_pkg.__all__:
            assert hasattr(expr_pkg, name), name
