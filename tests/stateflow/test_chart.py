"""Tests for chart blocks: concrete semantics and symbolic agreement."""

import random

from hypothesis import given, settings, strategies as st

from repro.coverage import CoverageCollector
from repro.expr.evaluator import evaluate
from repro.expr.types import BOOL, INT
from repro.model import ModelBuilder, Simulator
from repro.model.inputs import random_input
from repro.solver.encoder import OneStepEncoding
from repro.stateflow import ChartSpec


def traffic_chart():
    """Red -> Green -> Yellow -> Red cycle with a pedestrian request."""
    chart = ChartSpec("light")
    chart.input("tick", BOOL)
    chart.input("ped_request", BOOL)
    chart.output("color", INT, 0)  # 0 red, 1 green, 2 yellow
    chart.local("hold", INT, 0)

    red = chart.state("Red", entry=["color = 0", "hold = 0"],
                      during=["hold = hold + 1"])
    green = chart.state("Green", entry=["color = 1", "hold = 0"],
                        during=["hold = hold + 1"])
    yellow = chart.state("Yellow", entry=["color = 2"])
    chart.initial(red)
    chart.transition(red, green, guard="tick && hold >= 2", priority=1)
    chart.transition(green, yellow, guard="ped_request", priority=1)
    chart.transition(green, yellow, guard="tick && hold >= 3", priority=2)
    chart.transition(yellow, red, guard="tick", priority=1)
    return chart


def build_light_model():
    b = ModelBuilder("Light")
    tick = b.inport("tick", BOOL)
    ped = b.inport("ped_request", BOOL)
    chart = b.add_chart(
        traffic_chart(), {"tick": tick, "ped_request": ped}, name="light"
    )
    b.outport("color", chart["color"])
    return b.compile()


class TestConcreteSemantics:
    def test_initial_outputs(self):
        sim = Simulator(build_light_model())
        result = sim.step({"tick": False, "ped_request": False})
        assert result.outputs["color"] == 0

    def test_transition_needs_hold(self):
        sim = Simulator(build_light_model())
        # hold increments only via during; needs hold >= 2 before green.
        out = [
            sim.step({"tick": True, "ped_request": False}).outputs["color"]
            for _ in range(4)
        ]
        assert 1 in out  # eventually green
        assert out[0] == 0  # not immediately

    def test_priority_pedestrian_preempts(self):
        sim = Simulator(build_light_model())
        # Drive to green first.
        for _ in range(5):
            result = sim.step({"tick": True, "ped_request": False})
            if result.outputs["color"] == 1:
                break
        assert result.outputs["color"] == 1
        # Pedestrian request immediately yields yellow.
        result = sim.step({"tick": False, "ped_request": True})
        assert result.outputs["color"] == 2

    def test_entry_actions_run_once(self):
        sim = Simulator(build_light_model())
        sim.step({"tick": True, "ped_request": False})
        state = sim.get_state()
        assert state.get("light.hold") == 1  # during ran once in Red

    def test_chart_state_in_snapshot(self):
        compiled = build_light_model()
        state = Simulator(compiled).get_state()
        assert "light.loc" in state.values
        assert "light.color" in state.values
        from repro.model.block import STATE_CHART

        assert compiled.state_elements["light.loc"].category == STATE_CHART

    def test_transition_decisions_recorded(self):
        compiled = build_light_model()
        collector = CoverageCollector(compiled.registry)
        sim = Simulator(compiled, collector)
        sim.step({"tick": False, "ped_request": False})
        # Red's outgoing transition was evaluated (not taken).
        not_taken = next(
            b for b in compiled.registry.branches
            if "Red->Green" in b.label and b.label.endswith("not_taken")
        )
        assert collector.is_branch_covered(not_taken)

    def test_preempted_guard_not_evaluated(self):
        compiled = build_light_model()
        collector = CoverageCollector(compiled.registry)
        sim = Simulator(compiled, collector)
        # Reach green, then trigger the priority-1 pedestrian transition.
        for _ in range(5):
            sim.step({"tick": True, "ped_request": False})
        sim2_branches = [
            b.branch_id for b in compiled.registry.branches
            if "t2:" in b.label  # the lower-priority green->yellow
        ]
        # Whatever happened so far, after a pedestrian preemption in green
        # the t2 decision must not have been newly evaluated that step.
        # (behavioural check via chart semantics below)
        sim.reset()
        for _ in range(3):
            sim.step({"tick": True, "ped_request": False})
        covered_before = set(collector.covered_branch_ids)
        sim.step({"tick": True, "ped_request": True})  # green: ped preempts
        newly = set(collector.covered_branch_ids) - covered_before
        assert not (newly & set(sim2_branches))


class TestHierarchicalChart:
    def build(self):
        chart = ChartSpec("h")
        chart.input("up", BOOL)
        chart.input("reset", BOOL)
        chart.output("o", INT, 0)
        auto = chart.state("Auto")
        lo = chart.state("Lo", parent=auto, entry=["o = 1"])
        hi = chart.state("Hi", parent=auto, entry=["o = 2"])
        manual = chart.state("Manual", entry=["o = 9"])
        chart.initial(auto)
        chart.initial(lo, of=auto)
        chart.transition(lo, hi, guard="up", priority=1)
        # Superstate transition: fires from any child of Auto.
        chart.transition(auto, manual, guard="reset", priority=1)
        chart.transition(manual, auto, guard="up", priority=1)
        b = ModelBuilder("H")
        up = b.inport("up", BOOL)
        reset = b.inport("reset", BOOL)
        cs = b.add_chart(chart, {"up": up, "reset": reset}, name="h")
        b.outport("o", cs["o"])
        return b.compile()

    def test_enters_initial_child(self):
        sim = Simulator(self.build())
        assert sim.step({"up": False, "reset": False}).outputs["o"] == 0

    def test_child_transition(self):
        sim = Simulator(self.build())
        result = sim.step({"up": True, "reset": False})
        assert result.outputs["o"] == 2  # Lo -> Hi

    def test_superstate_transition_from_any_child(self):
        sim = Simulator(self.build())
        sim.step({"up": True, "reset": False})  # now in Hi
        result = sim.step({"up": False, "reset": True})
        assert result.outputs["o"] == 9  # Auto -> Manual fired from Hi

    def test_reentry_descends_to_initial_child(self):
        sim = Simulator(self.build())
        sim.step({"up": False, "reset": True})  # Manual
        result = sim.step({"up": True, "reset": False})  # back into Auto
        assert result.outputs["o"] == 1  # entered Lo, not Hi

    def test_inner_transition_preempts_outer(self):
        """Own transitions are checked before ancestors' (documented rule)."""
        sim = Simulator(self.build())
        result = sim.step({"up": True, "reset": True})
        # In Lo with both guards true: Lo->Hi (inner) wins over Auto->Manual.
        assert result.outputs["o"] == 2


class TestSymbolicAgreement:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_one_step_conditions_match_concrete(self, seed):
        compiled = build_light_model()
        rng = random.Random(seed)
        sim = Simulator(compiled, CoverageCollector(compiled.registry))
        for _ in range(rng.randint(0, 6)):
            sim.step(random_input(compiled.inports, rng))
        state = sim.get_state()
        inputs = random_input(compiled.inports, rng)
        encoding = OneStepEncoding(compiled, state)
        sim.set_state(state)
        result = sim.step(inputs)
        for decision_id, outcome in result.taken_outcomes.items():
            decision = compiled.registry.decision(decision_id)
            condition = encoding.branch_condition(decision.branches[outcome])
            assert evaluate(condition, inputs) is True

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_next_state_expressions_match(self, seed):
        compiled = build_light_model()
        rng = random.Random(seed)
        sim = Simulator(compiled, CoverageCollector(compiled.registry))
        for _ in range(rng.randint(0, 6)):
            sim.step(random_input(compiled.inports, rng))
        state = sim.get_state()
        inputs = random_input(compiled.inports, rng)
        encoding = OneStepEncoding(compiled, state)
        sim.set_state(state)
        sim.step(inputs)
        concrete_next = sim.get_state()
        for path, expr in encoding.next_state_expressions().items():
            expected = concrete_next.get(path)
            if hasattr(expr, "ty"):
                value = evaluate(expr, inputs)
            else:
                value = expr
            assert value == expected, path
