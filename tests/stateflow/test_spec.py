"""Tests for chart specifications: declarations, hierarchy, atom splitting."""

import pytest

from repro.errors import ChartError
from repro.expr import ops as x
from repro.expr.ast import Var
from repro.expr.evaluator import evaluate
from repro.expr.types import BOOL, INT
from repro.stateflow.spec import ChartSpec, extract_atoms


def simple_chart():
    chart = ChartSpec("c")
    chart.input("go", BOOL)
    chart.input("n", INT, 0, 10)
    chart.output("out", INT, 0)
    chart.local("count", INT, 0)
    a = chart.state("A", entry=["out = 1"])
    b = chart.state("B", entry=["out = 2"], during=["count = count + 1"])
    chart.initial(a)
    chart.transition(a, b, guard="go && n > 3", priority=1)
    chart.transition(b, a, guard="count >= 2", priority=1)
    return chart


class TestDeclarations:
    def test_variable_roles(self):
        chart = simple_chart()
        assert chart.input_names == ["go", "n"]
        assert chart.output_names == ["out"]
        assert chart.local_names == ["count"]

    def test_duplicate_variable_rejected(self):
        chart = ChartSpec("c")
        chart.input("x", INT)
        with pytest.raises(ChartError):
            chart.local("x", INT, 0)

    def test_duplicate_state_rejected(self):
        chart = ChartSpec("c")
        chart.state("A")
        with pytest.raises(ChartError):
            chart.state("A")

    def test_assignment_to_input_rejected(self):
        chart = ChartSpec("c")
        chart.input("x", INT)
        s = chart.state("A")
        t = chart.state("B")
        chart.initial(s)
        with pytest.raises(ChartError):
            chart.transition(s, t, actions=["x = 1"])

    def test_assignment_to_unknown_rejected(self):
        chart = ChartSpec("c")
        chart.state("A")
        with pytest.raises(ChartError):
            chart.state("B", entry=["zzz = 1"])

    def test_non_assignment_action_rejected(self):
        chart = ChartSpec("c")
        chart.local("v", INT, 0)
        with pytest.raises(ChartError):
            chart.state("A", entry=["v + 1"])

    def test_non_boolean_guard_rejected(self):
        chart = ChartSpec("c")
        chart.input("n", INT)
        a = chart.state("A")
        b = chart.state("B")
        chart.initial(a)
        with pytest.raises(ChartError):
            chart.transition(a, b, guard="n + 1")

    def test_missing_initial_rejected(self):
        chart = ChartSpec("c")
        chart.state("A")
        with pytest.raises(ChartError):
            chart.finalize()


class TestHierarchy:
    def make_nested(self):
        chart = ChartSpec("h")
        chart.input("go", BOOL)
        chart.output("o", INT, 0)
        top = chart.state("Top")
        inner1 = chart.state("Inner1", parent=top, entry=["o = 1"])
        inner2 = chart.state("Inner2", parent=top, entry=["o = 2"])
        other = chart.state("Other", entry=["o = 9"])
        chart.initial(top)
        chart.initial(inner1, of=top)
        chart.transition(inner1, inner2, guard="go", priority=1)
        chart.transition(top, other, guard="!go", priority=1)
        return chart, top, inner1, inner2, other

    def test_leaves_exclude_composites(self):
        chart, top, inner1, inner2, other = self.make_nested()
        names = [leaf.name for leaf in chart.leaves]
        assert "Top" not in names
        assert set(names) == {"Inner1", "Inner2", "Other"}

    def test_initial_leaf_descends(self):
        chart, top, inner1, *_ = self.make_nested()
        assert chart.initial_leaf() is inner1

    def test_state_depth(self):
        chart, top, inner1, *_ = self.make_nested()
        assert top.depth() == 0
        assert inner1.depth() == 1

    def test_candidates_include_ancestors(self):
        chart, top, inner1, inner2, other = self.make_nested()
        candidates = chart.candidates_for(inner1)
        sources = [t.source.name for t in candidates]
        # Own transitions first, then the parent's.
        assert sources == ["Inner1", "Top"]

    def test_composite_without_initial_child_rejected(self):
        chart = ChartSpec("h")
        top = chart.state("Top")
        chart.state("Inner", parent=top)
        chart.initial(top)
        with pytest.raises(ChartError, match="initial child"):
            chart.finalize()

    def test_initial_of_wrong_parent_rejected(self):
        chart = ChartSpec("h")
        top = chart.state("Top")
        stray = chart.state("Stray")
        with pytest.raises(ChartError):
            chart.initial(stray, of=top)


class TestCandidateOrdering:
    def test_priority_order(self):
        chart = ChartSpec("p")
        chart.input("x", INT)
        a = chart.state("A")
        b = chart.state("B")
        c = chart.state("C")
        chart.initial(a)
        t_low = chart.transition(a, b, guard="x > 0", priority=5)
        t_high = chart.transition(a, c, guard="x > 1", priority=1)
        candidates = chart.candidates_for(a)
        assert candidates == [t_high, t_low]

    def test_declaration_order_breaks_ties(self):
        chart = ChartSpec("p")
        a = chart.state("A")
        b = chart.state("B")
        chart.initial(a)
        t1 = chart.transition(a, b, priority=1)
        t2 = chart.transition(a, b, priority=1)
        assert chart.candidates_for(a) == [t1, t2]


class TestExtractAtoms:
    N = Var("n", INT)
    P = Var("p", BOOL)
    Q = Var("q", BOOL)

    def test_single_relational_atom(self):
        atoms, structure = extract_atoms(x.lt(self.N, 3))
        assert len(atoms) == 1
        assert evaluate(structure, {"c0": True}) is True

    def test_conjunction_two_atoms(self):
        guard = x.land(self.P, x.gt(self.N, 3))
        atoms, structure = extract_atoms(guard)
        assert len(atoms) == 2
        assert evaluate(structure, {"c0": True, "c1": False}) is False

    def test_duplicate_atoms_shared(self):
        p_lt = x.lt(self.N, 3)
        guard = x.lor(x.land(self.P, p_lt), p_lt)
        atoms, structure = extract_atoms(guard)
        assert len(atoms) == 2  # p and n<3, the repeat is shared

    def test_negation_preserved_in_structure(self):
        guard = x.land(self.P, x.lnot(self.Q))
        atoms, structure = extract_atoms(guard)
        assert len(atoms) == 2
        assert evaluate(structure, {"c0": True, "c1": True}) is False
        assert evaluate(structure, {"c0": True, "c1": False}) is True

    def test_structure_equivalent_to_guard(self):
        guard = x.lor(x.land(self.P, x.gt(self.N, 3)), x.eq(self.N, 0))
        atoms, structure = extract_atoms(guard)
        for p in (True, False):
            for n in (0, 2, 5):
                env = {"p": p, "n": n}
                vector = {f"c{i}": bool(evaluate(a, env)) for i, a in enumerate(atoms)}
                assert evaluate(structure, vector) == evaluate(guard, env)

    def test_constant_guard_has_no_atoms(self):
        atoms, structure = extract_atoms(x.lift(True))
        assert atoms == []
        assert structure.const_value() is True
